// Package workload provides the deterministic traffic generators and
// measurement helpers behind every experiment: request/response echo
// (latency-bound, the paper's RPC motivation), bulk streaming
// (throughput-bound, the "saturate a link" ideal of §2.2), and a mixed
// middlebox-style size distribution.
package workload

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Payload fills a deterministic pseudo-random payload for (seed, size).
// Verification regenerates and compares, so corruption anywhere in a
// stack shows up as a workload failure, not just a checksum counter.
func Payload(seed uint64, size int) []byte {
	p := make([]byte, size)
	x := seed*0x9E3779B97F4A7C15 + 1
	for i := range p {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
	return p
}

// Verify checks that got matches Payload(seed, len(got)).
func Verify(seed uint64, got []byte) error {
	want := Payload(seed, len(got))
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("workload: payload byte %d corrupted (seed %d)", i, seed)
		}
	}
	return nil
}

// Result summarizes one workload run.
type Result struct {
	Ops      int
	Bytes    int64
	Duration time.Duration
	// Latencies holds per-op round-trip times (echo workloads only).
	Latencies []time.Duration
}

// Throughput returns achieved bytes/second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Duration.Seconds()
}

// Gbps returns achieved gigabits/second.
func (r Result) Gbps() float64 { return r.Throughput() * 8 / 1e9 }

// OpsPerSec returns achieved operations/second.
func (r Result) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// Percentile returns the p-th latency percentile (p in [0,100]).
func (r Result) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	ls := append([]time.Duration{}, r.Latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := int(p / 100 * float64(len(ls)-1))
	return ls[idx]
}

func (r Result) String() string {
	s := fmt.Sprintf("%d ops, %d bytes in %v (%.2f Gbit/s, %.0f ops/s)",
		r.Ops, r.Bytes, r.Duration.Round(time.Microsecond), r.Gbps(), r.OpsPerSec())
	if len(r.Latencies) > 0 {
		s += fmt.Sprintf(", p50=%v p99=%v", r.Percentile(50).Round(time.Microsecond), r.Percentile(99).Round(time.Microsecond))
	}
	return s
}

// EchoClient drives n request/response exchanges of size bytes over rw
// and verifies every reply byte.
func EchoClient(rw io.ReadWriter, n, size int) (Result, error) {
	res := Result{Latencies: make([]time.Duration, 0, n)}
	buf := make([]byte, size)
	start := time.Now()
	for i := 0; i < n; i++ {
		req := Payload(uint64(i), size)
		t0 := time.Now()
		if _, err := rw.Write(req); err != nil {
			return res, fmt.Errorf("workload: echo write %d: %w", i, err)
		}
		if _, err := io.ReadFull(rw, buf); err != nil {
			return res, fmt.Errorf("workload: echo read %d: %w", i, err)
		}
		res.Latencies = append(res.Latencies, time.Since(t0))
		if err := Verify(uint64(i), buf); err != nil {
			return res, err
		}
		res.Ops++
		res.Bytes += int64(2 * size)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// EchoServer answers echo requests of size bytes until rw errors or n
// exchanges complete (n<=0: until error).
func EchoServer(rw io.ReadWriter, n, size int) error {
	buf := make([]byte, size)
	for i := 0; n <= 0 || i < n; i++ {
		if _, err := io.ReadFull(rw, buf); err != nil {
			if n <= 0 && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
				return nil
			}
			return err
		}
		if _, err := rw.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// BulkSend streams total bytes in chunk-sized writes.
func BulkSend(w io.Writer, total int64, chunk int) (Result, error) {
	res := Result{}
	payload := Payload(42, chunk)
	start := time.Now()
	var sent int64
	for sent < total {
		n := chunk
		if rem := total - sent; int64(n) > rem {
			n = int(rem)
		}
		if _, err := w.Write(payload[:n]); err != nil {
			return res, fmt.Errorf("workload: bulk write after %d bytes: %w", sent, err)
		}
		sent += int64(n)
		res.Ops++
	}
	res.Bytes = sent
	res.Duration = time.Since(start)
	return res, nil
}

// BulkRecv drains total bytes from r.
func BulkRecv(r io.Reader, total int64) (Result, error) {
	res := Result{}
	buf := make([]byte, 64<<10)
	start := time.Now()
	var got int64
	for got < total {
		n, err := r.Read(buf)
		got += int64(n)
		if err != nil {
			return res, fmt.Errorf("workload: bulk read after %d bytes: %w", got, err)
		}
	}
	res.Ops = 1
	res.Bytes = got
	res.Duration = time.Since(start)
	return res, nil
}

// MixSizes is a middlebox-flavoured request size sequence: dominated by
// small control messages with periodic MTU-scale and bulk bursts.
func MixSizes(n int) []int {
	out := make([]int, n)
	for i := range out {
		switch {
		case i%16 == 15:
			out[i] = 16 << 10
		case i%4 == 3:
			out[i] = 1400
		default:
			out[i] = 128
		}
	}
	return out
}
