package chaos

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"confio/internal/gateway"
)

// Tenant-isolation chaos: the scenarios in this file play one hostile
// or broken tenant against a live multi-tenant gateway and assert the
// containment contract — the faulty tenant ends CleanEpoch (recovers
// after backoff) or Evicted (sticky, budget exhausted), every *other*
// tenant's traffic continues uninterrupted with zero drops, zero
// evictions and zero corrupted frames, and no tenant fault ever touches
// the device-wide death budget underneath.

const (
	victimID   gateway.TenantID = 1
	neighborID gateway.TenantID = 2
	bystander  gateway.TenantID = 3
)

// tenantWorld is one gateway deployment under tenant chaos: the full
// Node testbed (multi-queue EventIdx ring, netstack, gateway) with the
// fake clock driving every tenant-containment timer.
type tenantWorld struct {
	Clock *Clock
	Node  *gateway.Node
}

func newTenantWorld() *tenantWorld {
	clk := NewClock()
	n, err := gateway.NewNode(gateway.NodeConfig{
		Queues:   2,
		EventIdx: true,
		Gateway: gateway.Config{
			Master:       []byte("chaos-gateway-master-secret"),
			Tenants:      []gateway.TenantID{victimID, neighborID, bystander},
			MaxFlows:     2,
			StallTimeout: 5 * time.Second,
			Clock:        clk.Now,
			TenantPolicy: Policy(clk),
		},
	})
	if err != nil {
		panic(err) // deployment-fixed config: cannot fail
	}
	return &tenantWorld{Clock: clk, Node: n}
}

// echoVerify drives n patterned request/response frames over c and
// checks every byte.
func echoVerify(c io.ReadWriteCloser, id gateway.TenantID, n int) error {
	for i := 0; i < n; i++ {
		want := pattern(64+i, byte(uint64(id)*16+uint64(i))|1)
		if _, err := c.Write(want); err != nil {
			return fmt.Errorf("tenant %d write %d: %w", id, i, err)
		}
		got := make([]byte, len(want))
		if _, err := io.ReadFull(c, got); err != nil {
			return fmt.Errorf("tenant %d read %d: %w", id, i, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("tenant %d frame %d corrupted in flight", id, i)
		}
	}
	return nil
}

// verifyTenant opens a fresh flow as id and echo-verifies n frames.
func (w *tenantWorld) verifyTenant(id gateway.TenantID, n int) error {
	c, err := w.Node.DialTenant(id)
	if err != nil {
		return fmt.Errorf("tenant %d dial: %w", id, err)
	}
	defer c.Close()
	return echoVerify(c, id, n)
}

// neighborsClean asserts the non-faulty tenants carried verified
// traffic and were never charged for the victim's fault.
func (w *tenantWorld) neighborsClean(fault string) *Result {
	for _, id := range []gateway.TenantID{neighborID, bystander} {
		if err := w.verifyTenant(id, 3); err != nil {
			r := corrupt(fault, "neighbor traffic interrupted: "+err.Error())
			return &r
		}
		cs := w.Node.Tb.Tenant(uint64(id))
		if cs.Drops != 0 || cs.Evictions != 0 {
			r := corrupt(fault, fmt.Sprintf("tenant %d charged for a neighbor's fault: drops=%d evict=%d", id, cs.Drops, cs.Evictions))
			return &r
		}
	}
	return nil
}

// deviceClean asserts the tenant fault never reached the device-wide
// fail-dead machinery: the shared ring is alive with zero deaths.
func (w *tenantWorld) deviceClean(fault string) *Result {
	if dead := w.Node.GatewayTransport().Dead(); dead != nil {
		r := corrupt(fault, "tenant fault killed the shared device: "+dead.Error())
		return &r
	}
	if deaths := w.Node.Bank.Snapshot().Deaths; deaths != 0 {
		r := corrupt(fault, fmt.Sprintf("tenant fault consumed %d device deaths, want 0", deaths))
		return &r
	}
	return nil
}

func (w *tenantWorld) counters(r Result) Result {
	c := w.Node.Bank.Snapshot()
	r.Deaths, r.Reincarnations, r.Stalls = c.Deaths, c.Reincarnations, c.StallsDetected
	return r
}

// floodOnce opens MaxFlows+1-th authenticated flows as id to breach the
// quota; the breach is the flood fault. Returns the holds (the caller
// keeps or closes them).
func (w *tenantWorld) floodOnce(id gateway.TenantID) {
	if c, err := w.Node.DialTenant(id); err == nil {
		// The handshake succeeds; the quota refusal cuts the flow — the
		// first exchange observes it.
		c.Write([]byte("x"))
		buf := make([]byte, 4)
		c.Read(buf)
		c.Close()
	}
}

// runTenantFlood: one tenant breaches its flow quota. The breach is
// shed and charged (backoff), the budget survives, neighbors never
// notice, and the flooder recovers on a fresh flow after the backoff —
// the tenant-scoped CleanEpoch.
func runTenantFlood() Result {
	const fault = "tenant-flood"
	w := newTenantWorld()
	defer w.Node.Close()
	if err := w.verifyTenant(victimID, 2); err != nil {
		return corrupt(fault, "healthy baseline: "+err.Error())
	}

	// Fill the quota, then breach it.
	h1, err := w.Node.DialTenant(victimID)
	if err != nil {
		return corrupt(fault, "hold 1: "+err.Error())
	}
	defer h1.Close()
	h2, err := w.Node.DialTenant(victimID)
	if err != nil {
		return corrupt(fault, "hold 2: "+err.Error())
	}
	defer h2.Close()
	w.floodOnce(victimID)

	if w.Node.Tb.Tenant(uint64(victimID)).Drops == 0 {
		return corrupt(fault, "flood breach not charged to the flooder")
	}
	if w.Node.GW.TenantEvicted(victimID) {
		return corrupt(fault, "a single quota breach evicted the tenant")
	}
	if r := w.neighborsClean(fault); r != nil {
		return *r
	}
	// Held flows keep working through the fault — shedding is for the
	// breach, not collective punishment.
	if err := echoVerify(h1, victimID, 2); err != nil {
		return corrupt(fault, "held flow broken by the breach: "+err.Error())
	}
	// After the backoff the flooder admits fresh flows again.
	h2.Close()
	w.Clock.Advance(2 * time.Second)
	if err := w.verifyTenant(victimID, 3); err != nil {
		return corrupt(fault, "flooder never recovered: "+err.Error())
	}
	if r := w.deviceClean(fault); r != nil {
		return *r
	}
	return w.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "quota breach shed and charged; neighbors untouched; flooder back after backoff"})
}

// runTenantStall: a tenant stops draining its replies. The equality-only
// stall watchdog sheds the flow (never wedging the shared pump), the
// shed is charged as one fault, neighbors flow throughout, and the
// staller reconnects cleanly after backoff.
func runTenantStall() Result {
	const fault = "tenant-stall"
	w := newTenantWorld()
	defer w.Node.Close()
	if err := w.verifyTenant(neighborID, 2); err != nil {
		return corrupt(fault, "healthy baseline: "+err.Error())
	}

	st, err := w.Node.DialTenant(victimID)
	if err != nil {
		return corrupt(fault, "staller dial: "+err.Error())
	}
	defer st.Close()
	// Registration happens server-side after the handshake; wait for the
	// flow to exist before stalling it, or the shed loop below would
	// mistake not-yet-registered for already-shed.
	regDeadline := time.Now().Add(5 * time.Second)
	for w.Node.GW.TenantFlows(victimID) == 0 {
		if time.Now().After(regDeadline) {
			return corrupt(fault, "staller flow never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Submit a pile of requests and never read a reply: the reply path
	// fills the flow's window and the relay's write blocks.
	msg := make([]byte, 8<<10)
	go func() {
		for i := 0; i < 64; i++ {
			if _, err := st.Write(msg); err != nil {
				return
			}
		}
	}()

	shed := false
	for i := 0; i < 500; i++ {
		// Two polls bracket one fake-clock jump past StallTimeout: the
		// first observes the progress counter, the second sees equality
		// held across the deadline.
		w.Node.GW.PollStalls()
		w.Clock.Advance(6 * time.Second)
		w.Node.GW.PollStalls()
		if w.Node.GW.TenantFlows(victimID) == 0 {
			shed = true
			break
		}
		time.Sleep(5 * time.Millisecond) // let the relay reach the blocked write
	}
	if !shed {
		return corrupt(fault, "stalled flow never shed (pump would wedge)")
	}
	if w.Node.Tb.Tenant(uint64(victimID)).Drops == 0 {
		return corrupt(fault, "shed not charged to the staller")
	}
	if r := w.neighborsClean(fault); r != nil {
		return *r
	}
	if w.Node.GW.TenantEvicted(victimID) {
		return corrupt(fault, "one stall evicted the tenant (budget is 4)")
	}
	w.Clock.Advance(2 * time.Second)
	if err := w.verifyTenant(victimID, 3); err != nil {
		return corrupt(fault, "staller never recovered: "+err.Error())
	}
	if r := w.deviceClean(fault); r != nil {
		return *r
	}
	return w.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "equality-only aging shed the stalled flow; neighbors flowed; staller back after backoff"})
}

// runTenantKeyCorrupt: a tenant (or an imposter — the gateway cannot
// tell) handshakes with a wrong key, more times than the eviction
// budget would tolerate. Handshake failures are unauthenticated and
// must only arm backoff: the eviction budget stays untouched and the
// real key recovers the tenant.
func runTenantKeyCorrupt() Result {
	const fault = "tenant-key-corrupt"
	w := newTenantWorld()
	defer w.Node.Close()
	bad := bytes.Repeat([]byte{0x42}, 32)
	for i := 0; i < 6; i++ { // 6 > the eviction budget of 4
		if _, err := w.Node.DialTenantKey(victimID, bad); err == nil {
			return corrupt(fault, "handshake with a corrupt key succeeded")
		}
		w.Clock.Advance(2 * time.Second) // clear the handshake backoff
	}
	if w.Node.GW.TenantEvicted(victimID) {
		return corrupt(fault, "unauthenticated handshake failures evicted the tenant (forged-hello kill switch)")
	}
	if got := w.Node.Tb.Tenant(uint64(victimID)).Evictions; got != 0 {
		return corrupt(fault, fmt.Sprintf("eviction budget burned by handshake failures: evictions=%d", got))
	}
	if r := w.neighborsClean(fault); r != nil {
		return *r
	}
	if err := w.verifyTenant(victimID, 3); err != nil {
		return corrupt(fault, "correct key refused after corrupt-key storm: "+err.Error())
	}
	if r := w.deviceClean(fault); r != nil {
		return *r
	}
	return w.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "wrong-key storm armed backoff only; budget untouched; real key recovered"})
}

// runTenantEvictStorm: a tenant floods past its fault budget. Eviction
// must trigger exactly once, shed every held flow, be sticky across any
// amount of elapsed time, and consume nothing from the device-wide
// death budget.
func runTenantEvictStorm() Result {
	const fault = "tenant-evict-storm"
	w := newTenantWorld()
	defer w.Node.Close()

	h1, err := w.Node.DialTenant(victimID)
	if err != nil {
		return corrupt(fault, "hold 1: "+err.Error())
	}
	defer h1.Close()
	h2, err := w.Node.DialTenant(victimID)
	if err != nil {
		return corrupt(fault, "hold 2: "+err.Error())
	}
	defer h2.Close()

	for i := 0; i < 10 && !w.Node.GW.TenantEvicted(victimID); i++ {
		w.floodOnce(victimID)
		w.Clock.Advance(2 * time.Second) // serve each fault's backoff
	}
	if !w.Node.GW.TenantEvicted(victimID) {
		return corrupt(fault, "fault budget never ended the flood storm")
	}
	// Eviction sheds the held flows too — the evicted tenant holds
	// nothing open on the gateway.
	deadline := time.Now().Add(5 * time.Second)
	for w.Node.GW.TenantFlows(victimID) != 0 {
		if time.Now().After(deadline) {
			return corrupt(fault, "evicted tenant still holds live flows")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := w.Node.Tb.Tenant(uint64(victimID)).Evictions; got != 1 {
		return corrupt(fault, fmt.Sprintf("evictions=%d, want exactly 1 (sticky, charged once)", got))
	}
	// Stickiness: a patient flooder cannot wait the budget window out.
	w.Clock.Advance(10 * time.Minute)
	if _, err := w.Node.DialTenant(victimID); err == nil {
		return corrupt(fault, "evicted tenant re-admitted after the budget window slid")
	}
	if r := w.neighborsClean(fault); r != nil {
		return *r
	}
	if r := w.deviceClean(fault); r != nil {
		return *r
	}
	return w.counters(Result{Fault: fault, Outcome: Evicted,
		Detail: "flood storm exhausted the tenant budget; sticky eviction; device budget untouched"})
}

// runCrossTenantDeath: the eviction storm again, but with a neighbor
// exchanging verified frames *concurrently* the whole way through — the
// strongest isolation claim: a tenant being driven all the way to
// sticky eviction costs its neighbors zero frames, zero drops, zero
// latency-of-death, while the shared device never blinks.
func runCrossTenantDeath() Result {
	const fault = "cross-tenant-death"
	w := newTenantWorld()
	defer w.Node.Close()

	nb, err := w.Node.DialTenant(neighborID)
	if err != nil {
		return corrupt(fault, "neighbor dial: "+err.Error())
	}
	defer nb.Close()

	// Concurrent neighbor load: echo-verify continuously until stopped.
	var stop atomic.Bool
	var echoes atomic.Uint64
	var nbErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			want := pattern(64+(i%32), byte(i)|1)
			if _, err := nb.Write(want); err != nil {
				nbErr = fmt.Errorf("write %d: %w", i, err)
				return
			}
			got := make([]byte, len(want))
			if _, err := io.ReadFull(nb, got); err != nil {
				nbErr = fmt.Errorf("read %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, want) {
				nbErr = fmt.Errorf("frame %d corrupted", i)
				return
			}
			echoes.Add(1)
		}
	}()

	// Drive the victim to sticky eviction under the neighbor's load.
	h1, err := w.Node.DialTenant(victimID)
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return corrupt(fault, "hold 1: "+err.Error())
	}
	defer h1.Close()
	h2, err := w.Node.DialTenant(victimID)
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return corrupt(fault, "hold 2: "+err.Error())
	}
	defer h2.Close()
	for i := 0; i < 10 && !w.Node.GW.TenantEvicted(victimID); i++ {
		w.floodOnce(victimID)
		w.Clock.Advance(2 * time.Second)
	}
	evicted := w.Node.GW.TenantEvicted(victimID)

	// Let the neighbor demonstrably outlive the eviction, then stop.
	before := echoes.Load()
	deadline := time.Now().Add(5 * time.Second)
	for echoes.Load() < before+3 && nbErr == nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if !evicted {
		return corrupt(fault, "victim never evicted")
	}
	if nbErr != nil {
		return corrupt(fault, "neighbor traffic interrupted by the eviction: "+nbErr.Error())
	}
	if echoes.Load() <= before {
		return corrupt(fault, "neighbor made no progress after the eviction")
	}
	if cs := w.Node.Tb.Tenant(uint64(neighborID)); cs.Drops != 0 || cs.Evictions != 0 {
		return corrupt(fault, fmt.Sprintf("neighbor charged: drops=%d evict=%d", cs.Drops, cs.Evictions))
	}
	if r := w.neighborsClean(fault); r != nil { // bystander + fresh-flow checks
		return *r
	}
	if r := w.deviceClean(fault); r != nil {
		return *r
	}
	return w.counters(Result{Fault: fault, Outcome: Evicted,
		Detail: fmt.Sprintf("victim evicted under load; neighbor verified %d frames uninterrupted", echoes.Load())})
}
