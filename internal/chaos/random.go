package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"confio/internal/safering"
)

// RandomRun plays a seeded-random fault storm against one device and
// enforces the recovery invariant after every step: the device is either
// healthy with verified traffic, or dead with every operation failing —
// never live-but-corrupt. The same seed replays the same storm.
//
// The returned Result summarizes the run: Absorbed if the device never
// died, CleanEpoch if it died and always came back clean, FailDead if
// the death budget ended it (the run stops there), and Corrupt the
// moment any step violates the invariant.
func RandomRun(seed int64, steps int) Result {
	fault := fmt.Sprintf("random[seed=%d]", seed)
	rng := rand.New(rand.NewSource(seed))
	d := NewDevice(false)
	wd := safering.NewWatchdog(safering.WatchdogConfig{
		Interval:   time.Hour, // Poll-driven
		StallAfter: 5 * time.Second,
		Clock:      d.Clock.Now,
	}, d.EP)

	died := false
	for step := 0; step < steps; step++ {
		// Let real time pass between incidents so the sliding budget
		// window behaves as it would in deployment.
		d.Clock.Advance(30 * time.Second)

		switch rng.Intn(5) {
		case 0: // benign traffic burst
		case 1: // receive-index overclaim
			d.EP.Shared().RXUsed.Indexes().StoreProd(uint64(d.EP.Config().Slots) * 4)
			//ciovet:allow fatalviolation fault injection: the fatal error is the point, and the invariant check below observes it via Dead()
			d.EP.Recv()
		case 2: // transmit-consumer overrun
			d.EP.Shared().TX.Indexes().StoreCons(d.EP.Shared().TX.Indexes().LoadProd() + 1000)
			//ciovet:allow fatalviolation fault injection: the fatal error is the point, and the invariant check below observes it via Dead()
			d.EP.Reap()
		case 3: // garbage descriptor behind the producer index (unread)
			d.EP.Shared().RXUsed.WriteDesc(uint64(rng.Intn(d.EP.Config().Slots)),
				safering.Desc{Len: uint32(rng.Uint32()), Kind: rng.Uint32()})
		case 4: // host freeze with work pending
			//ciovet:allow fatalviolation fault injection: a full-or-dead ring is fine here, the watchdog poll below is what is under test
			d.EP.Send(pattern(128, byte(step)|1))
			wd.Poll()
			d.Clock.Advance(6 * time.Second)
			wd.Poll()
		}

		// Invariant check.
		if d.EP.Dead() == nil {
			if err := d.Verify(1); err != nil {
				return corrupt(fault, fmt.Sprintf("step %d: live but wrong: %v", step, err))
			}
			continue
		}
		died = true
		if err := d.EP.Send(pattern(64, 1)); !errors.Is(err, safering.ErrDead) {
			return corrupt(fault, fmt.Sprintf("step %d: dead device accepted a send: %v", step, err))
		}
		err := d.Reincarnate()
		for errors.Is(err, safering.ErrQuarantine) {
			d.Clock.Advance(2 * time.Second)
			err = d.Reincarnate()
		}
		if errors.Is(err, safering.ErrBudgetExhausted) {
			if serr := d.EP.Send(pattern(64, 1)); !errors.Is(serr, safering.ErrDead) {
				return corrupt(fault, fmt.Sprintf("step %d: budget-dead device accepted a send: %v", step, serr))
			}
			return d.counters(Result{Fault: fault, Outcome: FailDead,
				Detail: fmt.Sprintf("budget exhausted at step %d; permanently dead", step)})
		}
		if err != nil {
			return corrupt(fault, fmt.Sprintf("step %d: reincarnate: %v", step, err))
		}
		if err := d.Verify(1); err != nil {
			return corrupt(fault, fmt.Sprintf("step %d: post-rebirth traffic: %v", step, err))
		}
	}
	if died {
		return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
			Detail: fmt.Sprintf("%d steps; every death recovered to a clean epoch", steps)})
	}
	return d.counters(Result{Fault: fault, Outcome: Absorbed,
		Detail: fmt.Sprintf("%d steps; no fault ever violated the protocol", steps)})
}
