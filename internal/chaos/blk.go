package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"time"

	"confio/internal/blkring"
	"confio/internal/blockdev"
	"confio/internal/platform"
	"confio/internal/safering"
)

// BlkDevice is one blkring storage device under chaos: the guest
// endpoint, an optional in-process host backend over a memory disk, the
// fake clock driving its timeouts and quarantine, and the windows of
// dead incarnations (kept for inertness probes).
type BlkDevice struct {
	Clock *Clock
	Meter *platform.Meter
	EP    *blkring.Endpoint
	Disk  *blockdev.MemDisk
	BE    *blkring.Backend
	Old   []*blkring.Shared
}

// NewBlkDevice builds a chaos storage device. host selects whether a
// live backend serves the ring; stall scenarios leave it detached.
func NewBlkDevice(host bool) *BlkDevice {
	const slots, sectors = 8, 64
	clk := NewClock()
	meter := &platform.Meter{}
	ep, err := blkring.New(slots, sectors, meter)
	if err != nil {
		panic(err) // deployment-fixed config: cannot fail
	}
	ep.SetClock(clk.Now)
	ep.SetRecoveryPolicy(Policy(clk))
	d := &BlkDevice{
		Clock: clk,
		Meter: meter,
		EP:    ep,
		Disk:  blockdev.NewMemDisk(sectors),
	}
	if host {
		d.Attach()
	}
	return d
}

// Attach starts a host backend on the current incarnation's window.
func (d *BlkDevice) Attach() {
	d.BE = blkring.NewBackend(d.EP.Shared(), d.Disk)
	d.BE.Start()
}

// Detach stops the host backend, if one is running. The guest's next
// submission will block (and, under a timeout or watchdog, die).
func (d *BlkDevice) Detach() {
	if d.BE != nil {
		d.BE.Stop()
		d.BE = nil
	}
}

// Verify drives n batched write+read round trips through the device and
// checks every byte. Each pass is one multi-sector span, so the ring's
// batched submission path is what chaos recovery is verified against.
func (d *BlkDevice) Verify(n int) error {
	const span = 4
	buf := make([]byte, span*blockdev.SectorSize)
	for i := 0; i < n; i++ {
		lba := uint64((i * span) % 32)
		want := pattern(span*blockdev.SectorSize, byte(i)|1)
		if err := d.EP.WriteSectors(lba, want); err != nil {
			return fmt.Errorf("batch write %d: %w", i, err)
		}
		if err := d.EP.ReadSectors(lba, buf); err != nil {
			return fmt.Errorf("batch read %d: %w", i, err)
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("batch %d corrupted on disk round trip", i)
		}
	}
	return nil
}

// Kill detaches the host and forges a consumer-index overclaim; the
// guest's next submission must observe it and die. Returns the error the
// guest saw.
func (d *BlkDevice) Kill() error {
	d.Detach()
	d.EP.Shared().Ring.Indexes().StoreCons(d.EP.Shared().Ring.NSlots() * 4)
	return d.EP.WriteSector(0, make([]byte, blockdev.SectorSize))
}

// Reincarnate recovers the device through the quarantine. The old
// window is retained for inertness probes; the caller re-Attaches a
// host when the scenario wants one.
func (d *BlkDevice) Reincarnate() error {
	old := d.EP.Shared()
	if _, err := d.EP.Reincarnate(); err != nil {
		return err
	}
	d.Old = append(d.Old, old)
	return nil
}

// waitStaged spins until the guest's blocked submission has published
// work into the ring (so a fault can be injected under it), bailing out
// if the submission returns early.
func (d *BlkDevice) waitStaged(errCh <-chan error) error {
	for {
		select {
		case err := <-errCh:
			return fmt.Errorf("submission returned before the fault landed: %v", err)
		default:
		}
		if head, _, alive := d.EP.WatchProgress(); !alive || head > 0 {
			return nil
		}
		runtime.Gosched()
	}
}

// counters fills the meter fields of a Result.
func (d *BlkDevice) counters(r Result) Result {
	c := d.Meter.Snapshot()
	r.Epoch = d.EP.Epoch()
	r.Deaths, r.Reincarnations, r.Stalls = c.Deaths, c.Reincarnations, c.StallsDetected
	return r
}

// runBlkIndexCorrupt: the host overclaims the storage ring's consumer
// index. The device must die, reincarnate cleanly, and scribbling on the
// dead incarnation's window must not reach the live one.
func runBlkIndexCorrupt() Result {
	const fault = "blk-index-corrupt"
	d := NewBlkDevice(true)
	if err := d.Verify(2); err != nil {
		return corrupt(fault, "healthy baseline failed: "+err.Error())
	}
	if err := d.Kill(); !errors.Is(err, blkring.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("overclaim not fatal: %v", err))
	}
	if err := d.EP.ReadSector(0, make([]byte, blockdev.SectorSize)); !errors.Is(err, blkring.ErrDead) {
		return corrupt(fault, fmt.Sprintf("dead device still accepts I/O: %v", err))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	d.Attach()
	// The host that kept the dead window keeps scribbling on it.
	for _, sh := range d.Old {
		sh.Ring.Indexes().StoreCons(sh.Ring.NSlots() * 8)
		sh.Ring.Indexes().StoreProd(sh.Ring.NSlots() * 8)
	}
	if err := d.Verify(2); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "storage overclaim fatal; fresh epoch verified; old window inert"})
}

// runBlkHostStall: the guest publishes storage work and the host
// freezes. The same watchdog that guards the network ring must declare
// the stall on the storage ring (the Endpoint is just another Watched),
// unblocking the stuck submission fatally.
func runBlkHostStall() Result {
	const fault = "blk-host-stall"
	d := NewBlkDevice(false)
	d.EP.SetTimeout(time.Hour) // isolate the watchdog from the submit timeout
	wd := safering.NewWatchdog(safering.WatchdogConfig{
		Interval:   time.Hour, // Poll-driven; the ticker never fires
		StallAfter: 5 * time.Second,
		Clock:      d.Clock.Now,
	}, d.EP)
	errCh := make(chan error, 1)
	go func() { errCh <- d.EP.WriteSector(3, pattern(blockdev.SectorSize, 7)) }()
	if err := d.waitStaged(errCh); err != nil {
		return corrupt(fault, err.Error())
	}
	wd.Poll() // obligation observed, clock starts
	d.Clock.Advance(6 * time.Second)
	wd.Poll() // frozen past the deadline: stall declared
	err := <-errCh
	if !errors.Is(err, blkring.ErrDead) || !errors.Is(err, safering.ErrStalled) {
		return corrupt(fault, fmt.Sprintf("blocked write not killed by the stall: %v", err))
	}
	if wd.Stalls() != 1 {
		return corrupt(fault, fmt.Sprintf("watchdog counted %d stalls, want 1", wd.Stalls()))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	d.Attach()
	if err := d.Verify(2); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "frozen storage host declared fatal by the shared watchdog"})
}

// runBlkSlowHost: the host simply never completes, and the fake clock —
// not wall time — carries the submission past its deadline. The device
// must fail dead on ErrTimeout with the staged slab quarantined, then
// come back clean with a fresh arena.
func runBlkSlowHost() Result {
	const fault = "blk-slow-host"
	d := NewBlkDevice(false)
	d.EP.SetTimeout(2 * time.Second)
	errCh := make(chan error, 1)
	go func() { errCh <- d.EP.WriteSector(5, pattern(blockdev.SectorSize, 9)) }()
	if err := d.waitStaged(errCh); err != nil {
		return corrupt(fault, err.Error())
	}
	d.Clock.Advance(3 * time.Second)
	err := <-errCh
	if !errors.Is(err, blkring.ErrTimeout) {
		return corrupt(fault, fmt.Sprintf("fake-clock deadline did not fire: %v", err))
	}
	if derr := d.EP.Dead(); !errors.Is(derr, blkring.ErrTimeout) {
		return corrupt(fault, fmt.Sprintf("timeout not recorded as death cause: %v", derr))
	}
	if err := d.EP.ReadSector(0, make([]byte, blockdev.SectorSize)); !errors.Is(err, blkring.ErrDead) || !errors.Is(err, blkring.ErrTimeout) {
		return corrupt(fault, fmt.Sprintf("dead-op error lost the timeout cause: %v", err))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	d.Attach()
	if err := d.Verify(2); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "fake clock drove the timeout; quarantined slab discarded with the old arena"})
}

// runBlkEpochReplay: the device dies and reincarnates, and the host
// replays a completion recorded from the dead epoch into the reborn
// ring. The raw epoch-0 status word must be fatally rejected — then a
// second admitted reincarnation must come back clean.
func runBlkEpochReplay() Result {
	const fault = "blk-epoch-replay"
	d := NewBlkDevice(true)
	if err := d.Verify(1); err != nil {
		return corrupt(fault, "healthy baseline failed: "+err.Error())
	}
	if err := d.Kill(); !errors.Is(err, blkring.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("kill setup: %v", err))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "first reincarnation refused: "+err.Error())
	}
	// No honest host this time: the replaying host completes the reborn
	// ring's first request with the status word it recorded at epoch 0.
	errCh := make(chan error, 1)
	go func() { errCh <- d.EP.ReadSector(1, make([]byte, blockdev.SectorSize)) }()
	if err := d.waitStaged(errCh); err != nil {
		return corrupt(fault, err.Error())
	}
	sh := d.EP.Shared()
	sh.Ring.Slots().SetU32(sh.Ring.SlotOff(0)+4, blkring.StatusOK) // raw word: epoch tag 0
	sh.Ring.Indexes().StoreCons(1)
	if err := <-errCh; !errors.Is(err, blkring.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("stale-epoch completion accepted: %v", err))
	}
	d.Clock.Advance(2 * time.Second) // serve the quarantine from death #2
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "second reincarnation refused: "+err.Error())
	}
	d.Attach()
	if err := d.Verify(2); err != nil {
		return corrupt(fault, "post-replay epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "epoch tag rejected the replayed completion fatally"})
}
