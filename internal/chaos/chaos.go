// Package chaos is the fault-injection harness for the fail-dead
// recovery subsystem. It plays a hostile or broken host against live
// safering devices — scripted faults and seeded-random storms — and
// classifies what each device ends up as. The invariant under test is
// the recovery contract:
//
//	every fault ends in Absorbed, CleanEpoch, FailDead, or (for
//	tenant-scoped faults) Evicted — never live-but-corrupt.
//
// A device is allowed to shrug a fault off (Absorbed), to die and come
// back at a fresh epoch with verified traffic (CleanEpoch), or to die
// permanently with every operation failing loudly (FailDead). The
// tenant-isolation scenarios (tenant.go) add one more allowed terminal
// state: a single tenant stickily Evicted by the gateway while the
// device and every neighbor keep flowing. The one forbidden terminal
// state is Corrupt: a device that still claims to be alive while
// delivering wrong bytes, or one that recovers outside the quarantine
// policy.
//
// The package deliberately imports no testing machinery: the chaos_test
// suite drives it under `go test`, and cmd/cioattack reuses the same
// scenarios for its report.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"confio/internal/platform"
	"confio/internal/safering"
)

// Outcome classifies a device's terminal state after a chaos scenario.
type Outcome string

const (
	// Absorbed: the fault never violated the protocol; the original
	// incarnation is still alive and traffic verifies.
	Absorbed Outcome = "absorbed"
	// CleanEpoch: the fault killed the device; reincarnation was
	// admitted and traffic verifies on the new epoch, with the old
	// window inert.
	CleanEpoch Outcome = "clean-epoch"
	// FailDead: the device is permanently dead (death budget exhausted
	// or quarantine held) and every operation fails loudly.
	FailDead Outcome = "fail-dead"
	// Evicted: a *tenant-scoped* terminal state — the faulty tenant's
	// fault budget is exhausted and it is stickily refused by the
	// gateway, while the device underneath stays alive and every other
	// tenant's traffic verifies uninterrupted. The tenant analogue of
	// FailDead, one containment layer up.
	Evicted Outcome = "evicted"
	// Corrupt is the forbidden state: live but wrong. Any scenario
	// returning it is a bug in the recovery subsystem.
	Corrupt Outcome = "CORRUPT"
)

// Result is the verdict of one chaos scenario.
type Result struct {
	Fault   string
	Outcome Outcome
	Detail  string
	// Epoch is the device epoch the scenario ended at.
	Epoch uint32
	// Deaths / Reincarnations / Stalls snapshot the recovery meters.
	Deaths, Reincarnations, Stalls uint64
}

func (r Result) String() string {
	return fmt.Sprintf("%-16s %-11s epoch=%d deaths=%d reinc=%d stalls=%d  %s",
		r.Fault, r.Outcome, r.Epoch, r.Deaths, r.Reincarnations, r.Stalls, r.Detail)
}

// Clock is an injectable fake clock so quarantine backoffs and watchdog
// deadlines elapse instantly and deterministically.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock starts a fake clock at a fixed instant.
func NewClock() *Clock {
	return &Clock{t: time.Unix(1_700_000_000, 0)}
}

// Now returns the fake instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Policy returns the tight quarantine policy chaos devices run under:
// small backoffs (the fake clock jumps over them), a 4-death budget per
// minute, and a fixed jitter seed for reproducibility.
func Policy(clk *Clock) safering.RecoveryPolicy {
	return safering.RecoveryPolicy{
		BaseBackoff:  10 * time.Millisecond,
		MaxBackoff:   time.Second,
		JitterFrac:   0.2,
		DeathBudget:  4,
		BudgetWindow: time.Minute,
		Clock:        clk.Now,
		Seed:         42,
	}
}

// Device is one single-queue safering device under chaos: the guest
// endpoint, the current host attachment, the fake clock driving its
// quarantine, and the poisoned windows of every prior incarnation (kept
// so scenarios can probe that they are inert).
type Device struct {
	Clock *Clock
	Meter *platform.Meter
	EP    *safering.Endpoint
	HP    *safering.HostPort
	// Old holds the shared windows of dead incarnations.
	Old []*safering.Shared
}

// NewDevice builds a chaos device. notify selects doorbell mode.
func NewDevice(notify bool) *Device {
	cfg := safering.DefaultConfig()
	cfg.Notify = notify
	return newDevice(cfg)
}

// NewEventIdxDevice builds a notify device with event-idx suppression
// enabled, for scenarios that stress the adaptive notification path.
func NewEventIdxDevice() *Device {
	cfg := safering.DefaultConfig()
	cfg.Notify = true
	cfg.EventIdx = true
	return newDevice(cfg)
}

func newDevice(cfg safering.DeviceConfig) *Device {
	clk := NewClock()
	meter := &platform.Meter{}
	ep, err := safering.New(cfg, meter)
	if err != nil {
		panic(err) // deployment-fixed config: cannot fail
	}
	ep.SetRecoveryPolicy(Policy(clk))
	return &Device{
		Clock: clk,
		Meter: meter,
		EP:    ep,
		HP:    safering.NewHostPort(ep.Shared()),
	}
}

// pattern builds a deterministic frame so both sides can verify content
// end to end.
func pattern(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

// Verify drives n patterned frames through each direction of the live
// device and checks every byte. Any mismatch or unexpected error is a
// corruption: the device claims to be alive but is wrong.
func (d *Device) Verify(n int) error {
	buf := make([]byte, d.EP.Config().FrameCap())
	for i := 0; i < n; i++ {
		want := pattern(64+i, byte(i)|1)
		if err := d.EP.Send(want); err != nil {
			return fmt.Errorf("tx send %d: %w", i, err)
		}
		got, err := d.HP.Pop(buf)
		if err != nil {
			return fmt.Errorf("tx pop %d: %w", i, err)
		}
		if !bytes.Equal(buf[:got], want) {
			return fmt.Errorf("tx frame %d corrupted in flight", i)
		}
		if err := d.EP.Reap(); err != nil {
			return fmt.Errorf("tx reap %d: %w", i, err)
		}

		want = pattern(96+i, byte(i)|2)
		if err := d.HP.Push(want); err != nil {
			return fmt.Errorf("rx push %d: %w", i, err)
		}
		rx, err := d.EP.Recv()
		if err != nil {
			return fmt.Errorf("rx recv %d: %w", i, err)
		}
		ok := bytes.Equal(rx.Bytes(), want)
		rx.Release()
		if !ok {
			return fmt.Errorf("rx frame %d corrupted in flight", i)
		}
	}
	return nil
}

// Kill makes the host violate the protocol (receive-index overclaim)
// and returns the fatal error the guest observed. The device is dead on
// return.
func (d *Device) Kill() error {
	d.EP.Shared().RXUsed.Indexes().StoreProd(uint64(d.EP.Config().Slots) * 4)
	_, err := d.EP.Recv()
	return err
}

// Reincarnate recovers the device through the quarantine and re-attaches
// a fresh host backend to the new window. The old window is retained for
// inertness probes.
func (d *Device) Reincarnate() error {
	old := d.EP.Shared()
	sh, err := d.EP.Reincarnate()
	if err != nil {
		return err
	}
	d.Old = append(d.Old, old)
	d.HP = safering.NewHostPort(sh)
	return nil
}

// ProbeOldWindows plays a host that kept the dead incarnations' windows:
// it scribbles descriptors into their rings, bumps their producer
// indexes, and rings their sealed doorbells. None of it may reach the
// live incarnation — Verify afterwards must still pass.
func (d *Device) ProbeOldWindows() error {
	for _, sh := range d.Old {
		sh.RXUsed.WriteDesc(0, safering.Desc{Len: 64, Kind: safering.KindInline})
		sh.RXUsed.Indexes().StoreProd(uint64(d.EP.Config().Slots) * 8)
		sh.TX.Indexes().StoreCons(uint64(d.EP.Config().Slots) * 8)
		if sh.RXBell != nil {
			sh.RXBell.Ring()
			if sh.RXBell.StaleRings() == 0 {
				return errors.New("stale doorbell ring on a sealed bell was not counted")
			}
		}
	}
	return d.Verify(2)
}

// counters fills the meter fields of a Result.
func (d *Device) counters(r Result) Result {
	c := d.Meter.Snapshot()
	r.Epoch = d.EP.Epoch()
	r.Deaths, r.Reincarnations, r.Stalls = c.Deaths, c.Reincarnations, c.StallsDetected
	return r
}

// corrupt builds the forbidden verdict.
func corrupt(fault, detail string) Result {
	return Result{Fault: fault, Outcome: Corrupt, Detail: detail}
}
