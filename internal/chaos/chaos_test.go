package chaos

import (
	"testing"
)

// TestScriptedFaults runs every scripted scenario and enumerates its
// terminal outcome. The recovery contract: every run ends Absorbed,
// CleanEpoch, or FailDead — a Corrupt verdict anywhere is a bug in the
// recovery subsystem and fails loudly.
func TestScriptedFaults(t *testing.T) {
	want := map[string]Outcome{
		"index-corrupt":         CleanEpoch,
		"mid-batch-kill":        CleanEpoch,
		"doorbell-flood":        Absorbed,
		"host-stall":            CleanEpoch,
		"notify-suppress-stall": CleanEpoch,
		"epoch-replay":          CleanEpoch,
		"reattach-storm":        FailDead,
		"mq-cross-kill":         CleanEpoch,
		"mq-reattach-storm":     FailDead,
		"blk-index-corrupt":     CleanEpoch,
		"blk-host-stall":        CleanEpoch,
		"blk-slow-host":         CleanEpoch,
		"blk-epoch-replay":      CleanEpoch,
		"tenant-flood":          CleanEpoch,
		"tenant-stall":          CleanEpoch,
		"tenant-key-corrupt":    CleanEpoch,
		"tenant-evict-storm":    Evicted,
		"cross-tenant-death":    Evicted,
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r := sc.Run()
			t.Log(r)
			if r.Outcome == Corrupt {
				t.Fatalf("forbidden live-but-corrupt state: %s", r.Detail)
			}
			if w, ok := want[sc.Name]; !ok {
				t.Fatalf("scenario %q missing from the expected-outcome table", sc.Name)
			} else if r.Outcome != w {
				t.Fatalf("outcome %s, want %s (%s)", r.Outcome, w, r.Detail)
			}
		})
	}
	if len(want) != len(Scenarios()) {
		t.Fatalf("expected-outcome table has %d entries, %d scenarios exist", len(want), len(Scenarios()))
	}
}

// TestRandomStorms replays seeded-random fault storms. Any seed may end
// Absorbed, CleanEpoch, or FailDead; none may ever end Corrupt.
func TestRandomStorms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := RandomRun(seed, 40)
		t.Log(r)
		if r.Outcome == Corrupt {
			t.Fatalf("seed %d reached the forbidden state: %s", seed, r.Detail)
		}
	}
}

// TestRandomReproducible pins determinism: the same seed must replay the
// same storm to the same verdict (the chaos harness is an experiment,
// not a dice roll).
func TestRandomReproducible(t *testing.T) {
	a, b := RandomRun(7, 30), RandomRun(7, 30)
	if a.Outcome != b.Outcome || a.Deaths != b.Deaths || a.Epoch != b.Epoch {
		t.Fatalf("seed 7 not reproducible: %v vs %v", a, b)
	}
}
