package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"confio/internal/platform"
	"confio/internal/safering"
)

// Scenario is one scripted chaos run: a named fault played against a
// fresh device, classified into a terminal Outcome.
type Scenario struct {
	Name string
	Run  func() Result
}

// Scenarios returns the scripted single- and multi-queue fault runs.
// Every one of them must end in Absorbed, CleanEpoch, or FailDead.
func Scenarios() []Scenario {
	return []Scenario{
		{"index-corrupt", runIndexCorrupt},
		{"mid-batch-kill", runMidBatchKill},
		{"doorbell-flood", runDoorbellFlood},
		{"host-stall", runHostStall},
		{"notify-suppress-stall", runNotifySuppressStall},
		{"epoch-replay", runEpochReplay},
		{"reattach-storm", runReattachStorm},
		{"mq-cross-kill", runMQCrossKill},
		{"mq-reattach-storm", runMQReattachStorm},
		{"blk-index-corrupt", runBlkIndexCorrupt},
		{"blk-host-stall", runBlkHostStall},
		{"blk-slow-host", runBlkSlowHost},
		{"blk-epoch-replay", runBlkEpochReplay},
		{"tenant-flood", runTenantFlood},
		{"tenant-stall", runTenantStall},
		{"tenant-key-corrupt", runTenantKeyCorrupt},
		{"tenant-evict-storm", runTenantEvictStorm},
		{"cross-tenant-death", runCrossTenantDeath},
	}
}

// runIndexCorrupt: the host overclaims the receive producer index. The
// device must die, reincarnate cleanly, and the poisoned old window must
// be inert.
func runIndexCorrupt() Result {
	const fault = "index-corrupt"
	d := NewDevice(false)
	if err := d.Verify(2); err != nil {
		return corrupt(fault, "healthy baseline failed: "+err.Error())
	}
	if err := d.Kill(); !errors.Is(err, safering.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("overclaim not fatal: %v", err))
	}
	if err := d.EP.Send(pattern(64, 1)); !errors.Is(err, safering.ErrDead) {
		return corrupt(fault, fmt.Sprintf("dead device still accepts sends: %v", err))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	if err := d.ProbeOldWindows(); err != nil {
		return corrupt(fault, "old-window probe: "+err.Error())
	}
	if err := d.Verify(4); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "overclaim fatal; fresh epoch verified; old window inert"})
}

// runMidBatchKill: the host consumes half a transmit batch, the guest
// reaps that progress, then the host rewinds the consumer index — a
// mid-batch protocol violation that must kill, then recover cleanly.
func runMidBatchKill() Result {
	const fault = "mid-batch-kill"
	d := NewDevice(false)
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = pattern(128, byte(i)|1)
	}
	if n, err := d.EP.SendBatch(frames); n != len(frames) || err != nil {
		return corrupt(fault, fmt.Sprintf("batch setup: n=%d err=%v", n, err))
	}
	bufs := make([][]byte, 4)
	lens := make([]int, 4)
	for i := range bufs {
		bufs[i] = make([]byte, d.EP.Config().FrameCap())
	}
	if n, err := d.HP.PopBatch(bufs, lens); n != 4 || err != nil {
		return corrupt(fault, fmt.Sprintf("half pop: n=%d err=%v", n, err))
	}
	if err := d.EP.Reap(); err != nil {
		return corrupt(fault, "reap of honest progress failed: "+err.Error())
	}
	// The kill: rewind the consumer index below progress the guest saw.
	d.EP.Shared().TX.Indexes().StoreCons(1)
	if err := d.EP.Reap(); !errors.Is(err, safering.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("consumer rewind not fatal: %v", err))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	if err := d.Verify(4); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "mid-batch rewind fatal; un-reaped half abandoned with the old arena"})
}

// runDoorbellFlood: 10k spurious doorbell rings in each direction. Not a
// protocol violation — the device must absorb it and carry verified
// traffic on the original incarnation.
func runDoorbellFlood() Result {
	const fault = "doorbell-flood"
	d := NewDevice(true)
	for i := 0; i < 10000; i++ {
		d.EP.Shared().RXBell.Ring()
		d.EP.Shared().TXBell.Ring()
	}
	if err := d.Verify(4); err != nil {
		return corrupt(fault, "traffic after flood: "+err.Error())
	}
	if err := d.EP.Dead(); err != nil {
		return corrupt(fault, "flood killed the device: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: Absorbed,
		Detail: "doorbells coalesce; no state to corrupt, no death"})
}

// runHostStall: the guest publishes transmit work and the host freezes.
// The watchdog must declare the stall (fatal, ErrStalled), and recovery
// must produce a clean new epoch.
func runHostStall() Result {
	const fault = "host-stall"
	d := NewDevice(false)
	wd := safering.NewWatchdog(safering.WatchdogConfig{
		Interval:   time.Hour, // Poll-driven; the ticker never fires
		StallAfter: 5 * time.Second,
		Clock:      d.Clock.Now,
	}, d.EP)
	if err := d.EP.Send(pattern(256, 3)); err != nil {
		return corrupt(fault, "send setup: "+err.Error())
	}
	wd.Poll() // obligation observed, clock starts
	d.Clock.Advance(6 * time.Second)
	wd.Poll() // frozen past the deadline: stall declared
	derr := d.EP.Dead()
	if !errors.Is(derr, safering.ErrStalled) {
		return corrupt(fault, fmt.Sprintf("stall not declared: %v", derr))
	}
	if err := d.EP.Send(pattern(64, 4)); !errors.Is(err, safering.ErrDead) || !errors.Is(err, safering.ErrStalled) {
		return corrupt(fault, fmt.Sprintf("dead-op error lost the stall cause: %v", err))
	}
	if wd.Stalls() != 1 {
		return corrupt(fault, fmt.Sprintf("watchdog counted %d stalls, want 1", wd.Stalls()))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	if err := d.Verify(4); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "frozen consumer index declared fatal; blocked work bounded"})
}

// runNotifySuppressStall: with event-idx suppression the host can elide
// every doorbell — so a host that suppresses and then freezes forever
// produces a guest that never rings and a host that never reaps. The
// watchdog must bound that silence exactly like an ordinary stall: the
// suppressed state shifts wake timing, never liveness accounting.
func runNotifySuppressStall() Result {
	const fault = "notify-suppress-stall"
	d := NewEventIdxDevice()
	// Host withdraws the TX wake threshold (one suppress covers all
	// later publishes), then stops serving entirely.
	d.HP.SuppressTXNotify()
	wd := safering.NewWatchdog(safering.WatchdogConfig{
		Interval:   time.Hour, // Poll-driven; the ticker never fires
		StallAfter: 5 * time.Second,
		Clock:      d.Clock.Now,
	}, d.EP)
	if err := d.EP.Send(pattern(256, 3)); err != nil {
		return corrupt(fault, "send setup: "+err.Error())
	}
	// Suppression must have elided the bell: the obligation exists with
	// zero notifications on the wire.
	if c := d.Meter.Snapshot(); c.Notifications != 0 || c.NotifsSuppressed == 0 {
		return corrupt(fault, fmt.Sprintf(
			"suppressed publish rang %d bells (suppressed=%d), want 0 rings",
			c.Notifications, c.NotifsSuppressed))
	}
	wd.Poll() // obligation observed, clock starts
	d.Clock.Advance(6 * time.Second)
	wd.Poll() // still unserved past the deadline: stall declared
	if derr := d.EP.Dead(); !errors.Is(derr, safering.ErrStalled) {
		return corrupt(fault, fmt.Sprintf("stall not declared under suppression: %v", derr))
	}
	if wd.Stalls() != 1 {
		return corrupt(fault, fmt.Sprintf("watchdog counted %d stalls, want 1", wd.Stalls()))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "reincarnation refused: "+err.Error())
	}
	if err := d.Verify(4); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "forever-suppression bounded by the watchdog; clean epoch after rebirth"})
}

// runEpochReplay: the host records a delivered descriptor, survives the
// device's death, and replays the recording into the reborn ring. The
// stale epoch tag must make the replay fatal — then a second admitted
// reincarnation must come back clean.
func runEpochReplay() Result {
	const fault = "epoch-replay"
	d := NewDevice(false)
	want := pattern(200, 9)
	if err := d.HP.Push(want); err != nil {
		return corrupt(fault, "push setup: "+err.Error())
	}
	recorded := d.EP.Shared().RXUsed.ReadDesc(0) // host's recording, epoch 0
	rx, err := d.EP.Recv()
	if err != nil {
		return corrupt(fault, fmt.Sprintf("delivery setup: %v", err))
	}
	ok := bytes.Equal(rx.Bytes(), want)
	rx.Release()
	if !ok {
		return corrupt(fault, "delivery setup: payload mismatch")
	}

	if err := d.Kill(); !errors.Is(err, safering.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("kill setup: %v", err))
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "first reincarnation refused: "+err.Error())
	}

	// The replay: the recorded epoch-0 descriptor enters the epoch-1 ring.
	d.EP.Shared().RXUsed.WriteDesc(0, recorded)
	d.EP.Shared().RXUsed.Indexes().StoreProd(1)
	if _, err := d.EP.Recv(); !errors.Is(err, safering.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("stale-epoch replay accepted: %v", err))
	}

	d.Clock.Advance(2 * time.Second) // serve the quarantine from death #2
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "second reincarnation refused: "+err.Error())
	}
	if err := d.Verify(4); err != nil {
		return corrupt(fault, "post-replay epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "epoch tag rejected the replayed descriptor fatally"})
}

// runReattachStorm: the host kills the device over and over, and the
// guest tries to reincarnate as fast as possible. The quarantine must
// throttle the storm (at least one ErrQuarantine) and the death budget
// must end it permanently — including after the budget window slides
// past the old deaths.
func runReattachStorm() Result {
	const fault = "reattach-storm"
	d := NewDevice(false)
	sawQuarantine := false
	budgetHit := false
	for round := 0; round < 20; round++ {
		if err := d.Kill(); !errors.Is(err, safering.ErrProtocol) {
			return corrupt(fault, fmt.Sprintf("round %d kill: %v", round, err))
		}
		err := d.Reincarnate()
		if errors.Is(err, safering.ErrQuarantine) {
			sawQuarantine = true
			d.Clock.Advance(2 * time.Second) // serve the backoff, retry
			err = d.Reincarnate()
		}
		if errors.Is(err, safering.ErrBudgetExhausted) {
			budgetHit = true
			break
		}
		if err != nil {
			return corrupt(fault, fmt.Sprintf("round %d reincarnate: %v", round, err))
		}
		if err := d.Verify(1); err != nil {
			return corrupt(fault, fmt.Sprintf("round %d traffic: %v", round, err))
		}
	}
	if !sawQuarantine {
		return corrupt(fault, "storm was never quarantined (backoff not enforced)")
	}
	if !budgetHit {
		return corrupt(fault, "death budget never ended the storm")
	}
	// Permanence is sticky: even after the budget window slides past
	// every recorded death, the device must stay dead.
	d.Clock.Advance(10 * time.Minute)
	if err := d.Reincarnate(); !errors.Is(err, safering.ErrBudgetExhausted) {
		return corrupt(fault, fmt.Sprintf("patient adversary waited the window out: %v", err))
	}
	if err := d.EP.Send(pattern(64, 5)); !errors.Is(err, safering.ErrDead) {
		return corrupt(fault, fmt.Sprintf("permanently dead device accepted a send: %v", err))
	}
	return d.counters(Result{Fault: fault, Outcome: FailDead,
		Detail: "backoff throttled the storm; budget exhaustion is permanent"})
}

// MultiDevice is a multi-queue chaos device: N queues behind one latch,
// with device-wide recovery.
type MultiDevice struct {
	Clock *Clock
	Bank  *platform.MeterBank
	M     *safering.MultiEndpoint
	HP    *safering.MultiHostPort
}

// NewMultiDevice builds a chaos device with the given queue count.
func NewMultiDevice(queues int) *MultiDevice {
	cfg := safering.DefaultConfig()
	clk := NewClock()
	bank := platform.NewMeterBank(queues)
	m, err := safering.NewMulti(cfg, queues, bank)
	if err != nil {
		panic(err)
	}
	m.SetRecoveryPolicy(Policy(clk))
	return &MultiDevice{
		Clock: clk,
		Bank:  bank,
		M:     m,
		HP:    safering.NewMultiHostPort(m.SharedQueues()),
	}
}

// VerifyAll drives patterned traffic through every queue.
func (d *MultiDevice) VerifyAll(n int) error {
	for q := 0; q < d.M.Queues(); q++ {
		ep, hp := d.M.Queue(q), d.HP.Queue(q)
		buf := make([]byte, ep.Config().FrameCap())
		for i := 0; i < n; i++ {
			want := pattern(80+i, byte(q*16+i)|1)
			if err := ep.Send(want); err != nil {
				return fmt.Errorf("q%d tx %d: %w", q, i, err)
			}
			got, err := hp.Pop(buf)
			if err != nil || !bytes.Equal(buf[:got], want) {
				return fmt.Errorf("q%d tx %d corrupted (%v)", q, i, err)
			}
			if err := hp.Push(want); err != nil {
				return fmt.Errorf("q%d rx %d: %w", q, i, err)
			}
			rx, err := ep.Recv()
			if err != nil {
				return fmt.Errorf("q%d rx %d: %w", q, i, err)
			}
			ok := bytes.Equal(rx.Bytes(), want)
			rx.Release()
			if !ok {
				return fmt.Errorf("q%d rx %d corrupted", q, i)
			}
		}
	}
	return nil
}

// KillQueue violates the protocol on one queue; the latch makes the
// whole device dead.
func (d *MultiDevice) KillQueue(q int) error {
	ep := d.M.Queue(q)
	ep.Shared().RXUsed.Indexes().StoreProd(uint64(ep.Config().Slots) * 4)
	_, err := ep.Recv()
	return err
}

// Reincarnate recovers the whole device and attaches a fresh host port.
func (d *MultiDevice) Reincarnate() error {
	shs, err := d.M.Reincarnate()
	if err != nil {
		return err
	}
	d.HP = safering.NewMultiHostPort(shs)
	return nil
}

func (d *MultiDevice) counters(r Result) Result {
	c := d.Bank.Snapshot()
	r.Epoch = d.M.Queue(0).Epoch()
	r.Deaths, r.Reincarnations, r.Stalls = c.Deaths, c.Reincarnations, c.StallsDetected
	return r
}

// runMQCrossKill: one queue's violation must kill every queue (shared
// latch), per-queue recovery must be refused, and device-wide
// reincarnation must bring all queues back at the same new epoch.
func runMQCrossKill() Result {
	const fault = "mq-cross-kill"
	d := NewMultiDevice(4)
	if err := d.VerifyAll(1); err != nil {
		return corrupt(fault, "healthy baseline: "+err.Error())
	}
	if err := d.KillQueue(2); !errors.Is(err, safering.ErrProtocol) {
		return corrupt(fault, fmt.Sprintf("queue kill: %v", err))
	}
	for q := 0; q < d.M.Queues(); q++ {
		if err := d.M.Queue(q).Send(pattern(64, byte(q))); !errors.Is(err, safering.ErrDead) {
			return corrupt(fault, fmt.Sprintf("queue %d survived a sibling violation: %v", q, err))
		}
	}
	// Per-queue resurrection must be structurally impossible.
	if _, err := d.M.Queue(0).Reincarnate(); err == nil {
		return corrupt(fault, "a single queue of a multi device reincarnated alone")
	}
	if err := d.Reincarnate(); err != nil {
		return corrupt(fault, "device-wide reincarnation refused: "+err.Error())
	}
	for q := 0; q < d.M.Queues(); q++ {
		if got := d.M.Queue(q).Epoch(); got != 1 {
			return corrupt(fault, fmt.Sprintf("queue %d at epoch %d after rebirth, want 1", q, got))
		}
	}
	if err := d.VerifyAll(2); err != nil {
		return corrupt(fault, "new epoch traffic: "+err.Error())
	}
	return d.counters(Result{Fault: fault, Outcome: CleanEpoch,
		Detail: "device-wide death, device-wide rebirth; per-queue revival refused"})
}

// runMQReattachStorm: the storm against a multi-queue device, rotating
// the killed queue. The shared budget must end it permanently.
func runMQReattachStorm() Result {
	const fault = "mq-reattach-storm"
	d := NewMultiDevice(2)
	budgetHit := false
	for round := 0; round < 20; round++ {
		if err := d.KillQueue(round % 2); !errors.Is(err, safering.ErrProtocol) {
			return corrupt(fault, fmt.Sprintf("round %d kill: %v", round, err))
		}
		d.Clock.Advance(2 * time.Second)
		err := d.Reincarnate()
		if errors.Is(err, safering.ErrBudgetExhausted) {
			budgetHit = true
			break
		}
		if err != nil {
			return corrupt(fault, fmt.Sprintf("round %d reincarnate: %v", round, err))
		}
		if err := d.VerifyAll(1); err != nil {
			return corrupt(fault, fmt.Sprintf("round %d traffic: %v", round, err))
		}
	}
	if !budgetHit {
		return corrupt(fault, "shared death budget never ended the storm")
	}
	for q := 0; q < d.M.Queues(); q++ {
		if err := d.M.Queue(q).Send(pattern(64, 1)); !errors.Is(err, safering.ErrDead) {
			return corrupt(fault, fmt.Sprintf("queue %d alive after budget exhaustion: %v", q, err))
		}
	}
	return d.counters(Result{Fault: fault, Outcome: FailDead,
		Detail: "rotating-queue storm hits the device-wide budget; permanently dead"})
}
