package core

import (
	"strings"
	"testing"

	"confio/internal/observe"
	"confio/internal/platform"
	"confio/internal/tcb"
)

func TestMetaCatalog(t *testing.T) {
	for _, id := range Designs() {
		m, err := MetaOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if m.Paper == "" || m.Boundary == "" || m.Description == "" {
			t.Fatalf("incomplete meta for %s: %+v", id, m)
		}
	}
	if _, err := MetaOf("no-such-design"); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := NewWorld("no-such-design"); err == nil {
		t.Fatal("unknown design world built")
	}
}

func TestTCBProfilesMatchFigure5(t *testing.T) {
	wantCore := map[DesignID]tcb.Class{
		HostSocket:       tcb.ClassS,
		L2Virtio:         tcb.ClassL,
		L2VirtioHardened: tcb.ClassL,
		L2Netvsc:         tcb.ClassL,
		L2NetvscHardened: tcb.ClassL,
		L2SafeRing:       tcb.ClassL,
		Tunnel:           tcb.ClassXL,
		DualBoundary:     tcb.ClassS,
		DirectDevice:     tcb.ClassXL, // the attested device joins the TCB
	}
	for id, want := range wantCore {
		coreP, total := TCBOf(id)
		if got := coreP.Class(); got != want {
			t.Errorf("%s core TCB class = %s (%d LoC), want %s", id, got, coreP.Total(), want)
		}
		if total.Total() < coreP.Total() {
			t.Errorf("%s: TEE total %d < core %d", id, total.Total(), coreP.Total())
		}
	}
	// The dual boundary's core is a small fraction of its TEE total —
	// the compromise-the-stack-gains-only-observability claim.
	coreP, total := TCBOf(DualBoundary)
	if coreP.Total()*3 > total.Total() {
		t.Fatalf("dual core %d not ≪ TEE total %d", coreP.Total(), total.Total())
	}
}

func TestEchoAcrossEveryDesign(t *testing.T) {
	for _, id := range Designs() {
		t.Run(string(id), func(t *testing.T) {
			w, err := NewWorld(id)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			res, err := w.RunEcho(20, 512)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 20 {
				t.Fatalf("ops = %d", res.Ops)
			}
		})
	}
}

func TestBulkAcrossEveryDesign(t *testing.T) {
	for _, id := range Designs() {
		t.Run(string(id), func(t *testing.T) {
			w, err := NewWorld(id)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			res, err := w.RunBulk(256<<10, 16<<10)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != 256<<10 {
				t.Fatalf("bytes = %d", res.Bytes)
			}
		})
	}
}

func TestObservabilityClassesMatchFigure5(t *testing.T) {
	want := map[DesignID]observe.Class{
		HostSocket:   observe.ClassXL,
		L2Virtio:     observe.ClassM,
		L2SafeRing:   observe.ClassM,
		Tunnel:       observe.ClassS,
		DualBoundary: observe.ClassM,
		DirectDevice: observe.ClassM, // TLP sizes ≈ network metadata
	}
	for id, wantClass := range want {
		t.Run(string(id), func(t *testing.T) {
			w, err := NewWorld(id)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			if _, err := w.RunEcho(10, 256); err != nil {
				t.Fatal(err)
			}
			rep := w.Observability()
			if got := rep.Class(); got != wantClass {
				t.Fatalf("obs class = %s, want %s (%s)", got, wantClass, rep)
			}
		})
	}
}

func TestTunnelHidesFrameSizes(t *testing.T) {
	w, err := NewWorld(Tunnel)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.RunEcho(10, 999); err != nil {
		t.Fatal(err)
	}
	rep := w.Observability()
	if !rep.HidesTraffic() {
		t.Fatalf("tunnel leaked frame metadata: %s", rep)
	}
	// All tunnel frames have identical outer size.
	sizes := map[int]bool{}
	for _, rec := range w.Net.Capture() {
		sizes[rec.Len] = true
	}
	// Capture was not enabled — use the byte/count ratio instead.
	if rep.Counts[observe.ChTunnelOuter] > 0 {
		mean := rep.Bytes[observe.ChTunnelOuter] / rep.Counts[observe.ChTunnelOuter]
		if mean < 1500 {
			t.Fatalf("tunnel frames not padded: mean %d", mean)
		}
	}
	_ = sizes
}

func TestCostProfilesDifferentiateDesigns(t *testing.T) {
	costs := map[DesignID]struct {
		tee, gate uint64
	}{}
	for _, id := range []DesignID{HostSocket, L2SafeRing, DualBoundary} {
		w, err := NewWorld(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.RunEcho(50, 256); err != nil {
			w.Close()
			t.Fatal(err)
		}
		c := w.Costs()
		costs[id] = struct{ tee, gate uint64 }{c.TEECrossings, c.GateCrossings}
		w.Close()
	}
	if costs[HostSocket].tee == 0 {
		t.Fatal("host-socket design crossed the TEE zero times")
	}
	if costs[L2SafeRing].tee != 0 {
		t.Fatalf("polling safe ring should cross the TEE zero times, got %d", costs[L2SafeRing].tee)
	}
	if costs[DualBoundary].gate == 0 {
		t.Fatal("dual boundary never crossed its gate")
	}
	if costs[DualBoundary].tee != 0 {
		t.Fatalf("dual boundary crossed the TEE %d times", costs[DualBoundary].tee)
	}
	if costs[HostSocket].tee < 100 {
		t.Fatalf("host-socket crossings suspiciously low: %d", costs[HostSocket].tee)
	}
}

func TestHardeningCostsVisible(t *testing.T) {
	copies := map[DesignID]uint64{}
	for _, id := range []DesignID{L2Virtio, L2VirtioHardened} {
		w, err := NewWorld(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.RunEcho(30, 1024); err != nil {
			w.Close()
			t.Fatal(err)
		}
		copies[id] = w.Costs().BytesCopied
		w.Close()
	}
	if copies[L2VirtioHardened] <= copies[L2Virtio] {
		t.Fatalf("hardening should add copies: %d vs %d", copies[L2VirtioHardened], copies[L2Virtio])
	}
}

func TestTunnelPaysCrypto(t *testing.T) {
	crypto := map[DesignID]uint64{}
	for _, id := range []DesignID{L2SafeRing, Tunnel} {
		w, err := NewWorld(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.RunEcho(20, 512); err != nil {
			w.Close()
			t.Fatal(err)
		}
		crypto[id] = w.Costs().CryptoBytes
		w.Close()
	}
	if crypto[Tunnel] <= crypto[L2SafeRing] {
		t.Fatalf("tunnel should pay extra crypto: %d vs %d", crypto[Tunnel], crypto[L2SafeRing])
	}
}

func TestDesignStringing(t *testing.T) {
	coreP, _ := TCBOf(DualBoundary)
	if !strings.Contains(coreP.String(), "compartment") {
		t.Fatalf("profile string: %s", coreP)
	}
}

// TestCompromisedIOStackConfined is the ternary-trust claim end to end:
// a fully breached I/O compartment cannot feed the application corrupted
// data — every tampered byte stream dies at the L5 secure channel.
func TestCompromisedIOStackConfined(t *testing.T) {
	w, err := NewWorld(DualBoundary)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Sanity: intact stack works.
	if _, err := w.RunEcho(3, 128); err != nil {
		t.Fatal(err)
	}

	if err := w.CompromiseIOStack(func(p []byte) {
		p[len(p)/2] ^= 0x01 // the breached stack flips one bit per burst
	}); err != nil {
		t.Fatal(err)
	}

	// The attempt now fails cleanly — handshake or record auth — and
	// never yields wrong bytes (RunEcho verifies every reply byte, so a
	// nil error here would mean corrupted data was accepted).
	if _, err := w.RunEcho(3, 128); err == nil {
		t.Fatal("application accepted data through a compromised stack")
	}

	// Only the CLIENT stack is breached; the server and the design stay
	// sound: restoring the stack restores service.
	if err := w.CompromiseIOStack(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RunEcho(3, 128); err != nil {
		t.Fatalf("service did not recover after remediation: %v", err)
	}
}

func TestCompromiseRequiresDualBoundary(t *testing.T) {
	w, err := NewWorld(L2SafeRing)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.CompromiseIOStack(func([]byte) {}); err == nil {
		t.Fatal("monolithic design claims an I/O compartment")
	}
}

// TestMixWorkload exercises the middlebox-flavoured size mix the intro
// motivates (small control messages, MTU bursts, bulk spikes).
func TestMixWorkload(t *testing.T) {
	w, err := NewWorld(DualBoundary)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	res, err := w.RunMix(32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 32 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestMultiQueueEchoWorld(t *testing.T) {
	for _, id := range []DesignID{HostSocket, L2SafeRing, DualBoundary} {
		t.Run(string(id), func(t *testing.T) {
			w, err := NewWorldQueues(id, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			if w.Queues() != 4 {
				t.Fatalf("Queues() = %d", w.Queues())
			}
			res, err := w.RunEcho(20, 512)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 20 {
				t.Fatalf("ops = %d", res.Ops)
			}
			// The per-queue meters must have seen the traffic: the
			// aggregated device snapshot carries the datapath costs.
			if id != HostSocket {
				qc := w.QueueCosts()
				if len(qc) != 4 {
					t.Fatalf("QueueCosts() = %d entries", len(qc))
				}
				total := platform.Costs{}
				for _, c := range qc {
					total = total.Add(c)
				}
				if total.IndexPublishes == 0 {
					t.Fatal("no index publishes recorded across queues")
				}
			}
		})
	}
}

func TestMultiQueueRejectsIncompatibleDesigns(t *testing.T) {
	for _, id := range []DesignID{Tunnel, L2Virtio, L2VirtioHardened, L2Netvsc} {
		if _, err := NewWorldQueues(id, 4); err == nil {
			t.Errorf("NewWorldQueues(%s, 4) should fail: design is single-queue", id)
		}
	}
	if _, err := NewWorldQueues(L2SafeRing, 0); err == nil {
		t.Error("NewWorldQueues(_, 0) should fail")
	}
}
