package core

import (
	"confio/internal/compartment"
	"confio/internal/observe"
	"confio/internal/platform"
	"confio/internal/tcp"
)

// shimConn is the HostSocket design's boundary: a TCP connection whose
// stack runs on the untrusted host, reached through per-call TEE
// crossings. The host observes every call (type, size, timing) and the
// socket metadata — the observability the paper attributes to the
// enclave library-OS approach.
type shimConn struct {
	c     *tcp.Conn
	meter *platform.Meter
	obs   *observe.Meter
}

func newShimConn(c *tcp.Conn, meter *platform.Meter, obs *observe.Meter) *shimConn {
	obs.Observe(observe.ChSocketMeta, 0) // connection 4-tuple + options
	return &shimConn{c: c, meter: meter, obs: obs}
}

func (s *shimConn) Read(p []byte) (int, error) {
	s.meter.CrossTEE(2) // ocall + return
	n, err := s.c.Read(p)
	if n > 0 {
		s.meter.Copy(n) // data crosses the boundary
	}
	s.obs.Observe(observe.ChCallPattern, n)
	return n, err
}

func (s *shimConn) Write(p []byte) (int, error) {
	s.meter.CrossTEE(2)
	s.meter.Copy(len(p))
	s.obs.Observe(observe.ChCallPattern, len(p))
	return s.c.Write(p)
}

func (s *shimConn) Close() error {
	s.meter.CrossTEE(2)
	s.obs.Observe(observe.ChCallPattern, 0)
	return s.c.Close()
}

// gateConn is the DualBoundary design's L5 boundary: the application
// reaches its (distrusted) in-TEE I/O compartment through a lightweight
// gate that enforces the trusted-component-allocates policy. Crossing
// costs are gate crossings, not TEE crossings.
type gateConn struct {
	c    *tcp.Conn
	gate *compartment.Gate
	app  *compartment.Domain
	// rxBuf is the app-provided receive buffer ("provides the buffer
	// when receiving").
	rxBuf *compartment.Buffer
	// compromised, when set, is the breached I/O compartment: it mutates
	// every byte stream passing through the stack. Installed by
	// World.CompromiseIOStack for the multi-stage-attack experiment.
	compromised func([]byte)
}

const gateRxBufSize = 64 << 10

func newGateConn(c *tcp.Conn, gate *compartment.Gate, app *compartment.Domain) *gateConn {
	return &gateConn{c: c, gate: gate, app: app, rxBuf: app.Alloc(gateRxBufSize)}
}

func (g *gateConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > gateRxBufSize {
			n = gateRxBufSize
		}
		// The app allocates directly in the I/O domain and fills the
		// buffer there; the I/O stack never sees an app pointer.
		b := g.gate.AllocTx(n)
		if err := g.gate.FillTx(b, p[:n]); err != nil {
			b.Free()
			return total, err
		}
		err := g.gate.SubmitTx(b, func(payload []byte) error {
			if g.compromised != nil {
				g.compromised(payload[:n])
			}
			_, werr := g.c.Write(payload[:n])
			return werr
		})
		b.Free()
		if err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

func (g *gateConn) Read(p []byte) (int, error) {
	want := len(p)
	if want > gateRxBufSize {
		want = gateRxBufSize
	}
	n, err := g.gate.Rx(g.rxBuf, func(into []byte) (int, error) {
		rn, rerr := g.c.Read(into[:want])
		if g.compromised != nil && rn > 0 {
			g.compromised(into[:rn])
		}
		return rn, rerr
	})
	if n > 0 {
		data, aerr := g.rxBuf.Access(g.app)
		if aerr != nil {
			return 0, aerr
		}
		copy(p, data[:n])
	}
	return n, err
}

func (g *gateConn) Close() error {
	defer g.rxBuf.Free()
	return g.gate.Call(func(*compartment.Domain) error { return g.c.Close() })
}
