package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"confio/internal/compartment"
	"confio/internal/ctls"
	"confio/internal/ipv4"
	"confio/internal/netstack"
	"confio/internal/netvsc"
	"confio/internal/nic"
	"confio/internal/observe"
	"confio/internal/platform"
	"confio/internal/safering"
	"confio/internal/simnet"
	"confio/internal/tcb"
	"confio/internal/tcp"
	"confio/internal/tdisp"
	"confio/internal/virtio"
	"confio/internal/workload"
)

// Service ops on an application connection (first byte after the ctls
// handshake).
const (
	opEcho byte = 'E'
	opBulk byte = 'B'
)

const appPort = 7443

var (
	clientIP = ipv4.Addr{10, 7, 0, 1}
	serverIP = ipv4.Addr{10, 7, 0, 2}
)

// World is one fully assembled design point: confidential client and
// server nodes, their untrusted host device models, the network, and the
// meters.
type World struct {
	ID    DesignID
	Net   *simnet.Network
	Meter *platform.Meter
	// Bank holds per-queue meters for multi-queue worlds (nil when the
	// world runs a single queue). Costs() aggregates it into the total.
	Bank *platform.MeterBank
	Obs  *observe.Meter

	queues int
	psk    []byte
	client *node
	server *node

	closers []func()
}

type node struct {
	stack *netstack.Stack
	// dual-boundary state
	gate       *compartment.Gate
	app        *compartment.Domain
	compromise func([]byte)
	// transport exposes the underlying guest endpoint for the attack
	// harness (type depends on the design).
	transport any
}

// NewWorld assembles a single-queue design point. Callers must Close it.
func NewWorld(id DesignID) (*World, error) { return NewWorldQueues(id, 1) }

// NewWorldQueues assembles a design point whose safe-ring transport runs
// N independent queues with flow steering (see nic.FlowHash). Only the
// safe-ring designs compose with multi-queue; the tunnel design wraps
// the NIC in an encryption layer that is single-queue, and the baseline
// transports model single-queue devices.
func NewWorldQueues(id DesignID, queues int) (*World, error) {
	if _, err := MetaOf(id); err != nil {
		return nil, err
	}
	if queues < 1 {
		return nil, fmt.Errorf("core: %d queues", queues)
	}
	if queues > 1 {
		switch id {
		case HostSocket, L2SafeRing, DualBoundary:
		default:
			return nil, fmt.Errorf("core: design %s does not support multi-queue", id)
		}
	}
	w := &World{
		ID:     id,
		Net:    simnet.New(),
		Meter:  &platform.Meter{},
		Obs:    observe.NewMeter(),
		queues: queues,
		psk:    []byte("attested-" + string(id) + "-psk-0123456789abcdef"),
	}

	// Wire the on-path observer: what anyone watching the network sees.
	w.Net.OnFrame(func(rec simnet.CaptureRecord) {
		if id == Tunnel {
			w.Obs.Observe(observe.ChTunnelOuter, rec.Len)
			return
		}
		w.Obs.Observe(observe.ChFrameMeta, rec.Len)
		if id != HostSocket {
			// L2 designs: the host also reads the ring descriptors —
			// informationally equivalent to the frames.
			w.Obs.Observe(observe.ChDescriptorMeta, rec.Len)
		}
	})

	var err error
	if w.client, err = w.buildNode(clientIP, 0xC1); err != nil {
		w.Close()
		return nil, err
	}
	if w.server, err = w.buildNode(serverIP, 0xC2); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.startServer(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// buildNode constructs one side's guest (or host) stack and device model.
func (w *World) buildNode(ip ipv4.Addr, macLast byte) (*node, error) {
	n := &node{}
	var guest nic.Guest
	var host nic.Host

	// The HostSocket design's NIC belongs to the untrusted host: its
	// driver costs are not confidential-side costs, so it gets no meter.
	guestMeter := w.Meter
	if w.ID == HostSocket {
		guestMeter = nil
	}

	switch w.ID {
	case HostSocket, L2SafeRing, Tunnel, DualBoundary:
		cfg := safering.DefaultConfig()
		cfg.MAC[5] = macLast
		if w.queues > 1 {
			// Multi-queue device: N independent ring pairs behind one
			// fail-dead latch, per-queue meters aggregated into the
			// world's cost snapshot, and an RSS-style multi-pump.
			// Both nodes charge the same bank, mirroring how single-queue
			// worlds share one w.Meter across client and server.
			var bank *platform.MeterBank
			if guestMeter != nil {
				if w.Bank == nil {
					w.Bank = platform.NewMeterBank(w.queues)
				}
				bank = w.Bank
			}
			mep, err := safering.NewMulti(cfg, w.queues, bank)
			if err != nil {
				return nil, err
			}
			guest = mep.NIC()
			mhp := safering.NewMultiHostPort(mep.SharedQueues())
			mpump := nic.StartMultiPump(mhp.HostNICs(), w.Net.NewPort())
			w.closers = append(w.closers, mpump.Stop)
			wd := safering.WatchDevice(safering.DefaultWatchdogConfig(), mep)
			wd.Start()
			w.closers = append(w.closers, wd.Stop)
			n.transport = mep
			break
		}
		ep, err := safering.New(cfg, guestMeter)
		if err != nil {
			return nil, err
		}
		guest, host = ep.NIC(), safering.NewHostPort(ep.Shared()).NIC()
		// Liveness: a host that freezes the consumer index converts a
		// safety guarantee into a hang without this — the watchdog turns
		// the stall into a declared fail-dead (ErrStalled).
		wd := safering.NewWatchdog(safering.DefaultWatchdogConfig(), ep)
		wd.Start()
		w.closers = append(w.closers, wd.Stop)
		n.transport = ep

	case L2Virtio, L2VirtioHardened:
		cfg := virtio.DefaultConfig()
		cfg.MAC[5] = macLast
		if w.ID == L2VirtioHardened {
			cfg.Hardening = virtio.FullHardening()
		}
		d, dv, err := virtio.NewPair(cfg, guestMeter)
		if err != nil {
			return nil, err
		}
		guest, host = d.NIC(), dv.NIC()
		n.transport = d

	case L2Netvsc, L2NetvscHardened:
		cfg := netvsc.DefaultConfig()
		cfg.MAC[5] = macLast
		if w.ID == L2NetvscHardened {
			cfg.Hardening = netvsc.FullHardening()
		}
		d, h, err := netvsc.New(cfg, guestMeter)
		if err != nil {
			return nil, err
		}
		guest, host = d.NIC(), h.NIC()
		n.transport = d

	case DirectDevice:
		// §3.4: the NIC itself is attested and sits on the wire; the
		// TEE↔device link is IDE-protected; the host only relays opaque
		// TLPs. No host-side pump is needed — the device pumps itself.
		id := tdisp.DeviceID(fmt.Sprintf("nic-%x", macLast))
		key := append([]byte("manufacturer-key-"), byte(macLast))
		fw := []byte("confio-nic-firmware-v1")
		dev := tdisp.NewDevice(id, key, fw, w.Net.NewPort())
		relay := &tdisp.Relay{}
		dev.Connect(relay)
		rot := &tdisp.RootOfTrust{
			Keys: map[tdisp.DeviceID][]byte{id: key},
			Good: map[tdisp.Measurement]bool{tdisp.MeasureFirmware(fw): true},
		}
		mac := [6]byte{0x02, 0, 0, 0xDD, 0, macLast}
		g, err := tdisp.Attach(dev, rot, relay, mac, 1500, w.Meter)
		if err != nil {
			return nil, err
		}
		pump := tdisp.StartPump(dev)
		w.closers = append(w.closers, pump.Stop)
		n.stack = netstack.New(g, ip)
		n.stack.Start()
		w.closers = append(w.closers, n.stack.Close)
		n.transport = g
		return n, nil
	}

	if w.ID == Tunnel {
		key := hkdfLikeKey(w.psk)
		tg, err := newTunnelNIC(guest, key, w.Meter)
		if err != nil {
			return nil, err
		}
		guest = tg
	}

	if host != nil { // multi-queue worlds started their pump above
		pump := nic.StartPump(host, w.Net.NewPort())
		w.closers = append(w.closers, pump.Stop)
	}

	n.stack = netstack.New(guest, ip)
	n.stack.Start()
	w.closers = append(w.closers, n.stack.Close)

	if w.ID == DualBoundary {
		n.app = compartment.NewDomain("app", w.Meter)
		ioDom := compartment.NewDomain("io", w.Meter)
		n.gate = compartment.NewGate(n.app, ioDom, w.Meter)
	}
	return n, nil
}

// hkdfLikeKey derives a 16-byte tunnel key from the world PSK.
func hkdfLikeKey(psk []byte) []byte {
	key := make([]byte, 16)
	for i, b := range psk {
		key[i%16] ^= b + byte(i)
	}
	return key
}

// wrap applies the design's L5 boundary to a raw TCP connection.
func (w *World) wrap(n *node, c *tcp.Conn) io.ReadWriteCloser {
	switch w.ID {
	case HostSocket:
		return newShimConn(c, w.Meter, w.Obs)
	case DualBoundary:
		gc := newGateConn(c, n.gate, n.app)
		gc.compromised = n.compromise
		return gc
	default:
		return c
	}
}

// startServer runs the accept loop and per-connection service.
func (w *World) startServer() error {
	l, err := w.server.stack.Listen(appPort, 16)
	if err != nil {
		return err
	}
	w.closers = append(w.closers, l.Close)
	if w.ID == HostSocket {
		w.Obs.Observe(observe.ChSocketMeta, 0) // listener registration
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go w.serve(c)
		}
	}()
	return nil
}

func (w *World) serve(c *tcp.Conn) {
	// Bound the handshake: a tampering stack can otherwise corrupt record
	// framing so both sides wait forever for bytes that never come.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	base := w.wrap(w.server, c)
	sec, err := ctls.Server(base, w.psk, w.Meter)
	if err != nil {
		base.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	defer sec.Close()

	var op [1]byte
	if _, err := io.ReadFull(sec, op[:]); err != nil {
		return
	}
	switch op[0] {
	case opEcho:
		buf := make([]byte, 64<<10)
		for {
			n, err := sec.Read(buf)
			if err != nil {
				return
			}
			if _, err := sec.Write(buf[:n]); err != nil {
				return
			}
		}
	case opBulk:
		var hdr [8]byte
		if _, err := io.ReadFull(sec, hdr[:]); err != nil {
			return
		}
		total := int64(binary.BigEndian.Uint64(hdr[:]))
		if _, err := workload.BulkRecv(sec, total); err != nil {
			return
		}
		sec.Write([]byte{1}) // ack
	}
}

// DialApp opens a secure application connection to the server through
// the design's full path.
func (w *World) DialApp() (io.ReadWriteCloser, error) {
	c, err := w.client.stack.Dial(serverIP, appPort, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("core: %s dial: %w", w.ID, err)
	}
	if w.ID == HostSocket {
		w.Obs.Observe(observe.ChSocketMeta, 0)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	base := w.wrap(w.client, c)
	sec, err := ctls.Client(base, w.psk, w.Meter)
	if err != nil {
		base.Close()
		return nil, fmt.Errorf("core: %s handshake: %w", w.ID, err)
	}
	c.SetReadDeadline(time.Time{})
	return sec, nil
}

// RunEcho performs n request/response exchanges of size bytes.
func (w *World) RunEcho(n, size int) (workload.Result, error) {
	conn, err := w.DialApp()
	if err != nil {
		return workload.Result{}, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{opEcho}); err != nil {
		return workload.Result{}, err
	}
	return workload.EchoClient(conn, n, size)
}

// RunBulk streams total bytes to the server in chunk-sized writes and
// waits for the server's acknowledgment, so the measured duration covers
// end-to-end delivery.
func (w *World) RunBulk(total int64, chunk int) (workload.Result, error) {
	conn, err := w.DialApp()
	if err != nil {
		return workload.Result{}, err
	}
	defer conn.Close()
	var hdr [9]byte
	hdr[0] = opBulk
	binary.BigEndian.PutUint64(hdr[1:], uint64(total))
	if _, err := conn.Write(hdr[:]); err != nil {
		return workload.Result{}, err
	}
	start := time.Now()
	res, err := workload.BulkSend(conn, total, chunk)
	if err != nil {
		return res, err
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != 1 {
		return res, fmt.Errorf("core: bulk ack: %w", err)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// CompromiseIOStack models a fully breached I/O compartment on the
// client side of a dual-boundary world: from now on the stack mutates
// every byte stream it carries (the strongest thing a compromised
// compartment can do to data, short of dropping it). The paper's claim
// under test: this "only results in increased observability" — the L5
// secure channel refuses everything the breached stack touches, so no
// corrupted or forged data ever reaches the application.
func (w *World) CompromiseIOStack(mutate func([]byte)) error {
	if w.ID != DualBoundary {
		return fmt.Errorf("core: %s has no I/O compartment to compromise", w.ID)
	}
	w.client.compromise = mutate
	return nil
}

// RunMix drives n echo exchanges with the middlebox-flavoured size
// distribution (mostly small control messages, periodic MTU-scale and
// bulk bursts) that the paper's introduction motivates.
func (w *World) RunMix(n int) (workload.Result, error) {
	conn, err := w.DialApp()
	if err != nil {
		return workload.Result{}, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{opEcho}); err != nil {
		return workload.Result{}, err
	}
	res := workload.Result{}
	start := time.Now()
	for i, size := range workload.MixSizes(n) {
		req := workload.Payload(uint64(i), size)
		t0 := time.Now()
		if _, err := conn.Write(req); err != nil {
			return res, err
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return res, err
		}
		res.Latencies = append(res.Latencies, time.Since(t0))
		if err := workload.Verify(uint64(i), buf); err != nil {
			return res, err
		}
		res.Ops++
		res.Bytes += int64(2 * size)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// Costs snapshots the confidential-side cost meter, aggregating the
// per-queue bank of a multi-queue world into the total.
func (w *World) Costs() platform.Costs { return w.Meter.Snapshot().Add(w.Bank.Snapshot()) }

// Queues returns the transport queue count (1 for single-queue worlds).
func (w *World) Queues() int { return w.queues }

// QueueCosts returns per-queue cost snapshots (nil for single-queue or
// unmetered worlds).
func (w *World) QueueCosts() []platform.Costs { return w.Bank.QueueSnapshots() }

// Observability reports what the host has seen so far.
func (w *World) Observability() observe.Report { return w.Obs.Report() }

// TCB returns the design's core and TEE-total profiles.
func (w *World) TCB() (core, teeTotal tcb.Profile) {
	return TCBOf(w.ID)
}

// ClientTransport exposes the client's guest transport endpoint (the
// attack harness reaches through it to play the malicious host).
func (w *World) ClientTransport() any { return w.client.transport }

// ServerTransport exposes the server's guest transport endpoint.
func (w *World) ServerTransport() any { return w.server.transport }

// Close tears the world down.
func (w *World) Close() {
	for i := len(w.closers) - 1; i >= 0; i-- {
		w.closers[i]()
	}
	w.closers = nil
}
