// Package core is the paper's contribution assembled into runnable
// systems: it builds complete confidential I/O "worlds" — a confidential
// client and server, their untrusted hosts, and the network between
// them — for every design point in Figure 5, and runs workloads over
// them while metering performance costs, TCB size, observability, and
// attack resilience.
//
// The designs:
//
//   - HostSocket: the enclave library-OS position (Graphene, SCONE, CCF).
//     The TCP/IP stack runs on the untrusted host; every socket call
//     crosses the TEE boundary; the host sees call patterns and socket
//     metadata (observability XL) but the confidential TCB is tiny.
//
//   - L2Virtio / L2VirtioHardened, L2Netvsc / L2NetvscHardened: the
//     lift-and-shift confidential-VM position. The full network stack
//     plus a legacy paravirtual driver live in the TEE; hardening is
//     retrofitted (or not) per §2.5.
//
//   - L2SafeRing: the paper's safe-by-construction L2 interface under a
//     monolithic TEE (the ShieldBox/rkt-io position with a safe driver).
//
//   - Tunnel: the LightBox position — L2 frames encrypted and padded
//     into a constant-size tunnel, hiding traffic shape from the host at
//     the cost of the largest TCB and per-frame crypto.
//
//   - DualBoundary: this work (§3.1–3.2). The safe ring at L2 as a
//     strong host boundary, the network stack demoted into an I/O
//     compartment, and a lightweight single-distrust gate plus mandatory
//     secure channel at L5. Core TCB S, observability M, performance
//     close to L2SafeRing.
//
// In every design the application traffic itself is protected end to end
// with the ctls secure channel — the paper's mandatory-TLS rule — so the
// comparison isolates the I/O boundary, not application hygiene.
package core

import (
	"fmt"

	"confio/internal/tcb"
)

// DesignID names one confidential I/O design point.
type DesignID string

// The design points of Figure 5 (plus the hardened baseline variants of
// §2.5).
const (
	HostSocket       DesignID = "hostsocket"
	L2Virtio         DesignID = "l2-virtio"
	L2VirtioHardened DesignID = "l2-virtio-hardened"
	L2Netvsc         DesignID = "l2-netvsc"
	L2NetvscHardened DesignID = "l2-netvsc-hardened"
	L2SafeRing       DesignID = "l2-safering"
	Tunnel           DesignID = "tunnel"
	DualBoundary     DesignID = "dual-boundary"
	DirectDevice     DesignID = "direct-device"
)

// Designs lists every design point in presentation order.
func Designs() []DesignID {
	return []DesignID{
		HostSocket,
		L2Virtio, L2VirtioHardened,
		L2Netvsc, L2NetvscHardened,
		L2SafeRing, Tunnel, DualBoundary, DirectDevice,
	}
}

// Meta describes a design point.
type Meta struct {
	ID          DesignID
	Paper       string // which prior system family it stands for
	Boundary    string // where P1 places the trust boundary
	Description string
}

var metas = map[DesignID]Meta{
	HostSocket: {HostSocket, "Graphene / SCONE / CCF", "L5 (host sockets)",
		"host runs the network stack; every socket op crosses the TEE boundary"},
	L2Virtio: {L2Virtio, "lift-and-shift CVM", "L2 (virtio, unhardened)",
		"legacy virtio driver trusting the host device"},
	L2VirtioHardened: {L2VirtioHardened, "hardened CVM (§2.5)", "L2 (virtio, retrofitted)",
		"virtio with the Figure-4 retrofits (checks, init, copies, races, restrict)"},
	L2Netvsc: {L2Netvsc, "lift-and-shift CVM (Hyper-V)", "L2 (netvsc, unhardened)",
		"legacy vmbus channel trusting the host"},
	L2NetvscHardened: {L2NetvscHardened, "hardened CVM (§2.5)", "L2 (netvsc, retrofitted)",
		"netvsc with the Figure-3 retrofits"},
	L2SafeRing: {L2SafeRing, "ShieldBox / rkt-io position, safe interface", "L2 (safe ring)",
		"the paper's safe-by-construction ring, stack in the monolithic TEE"},
	Tunnel: {Tunnel, "LightBox", "L2 in TLS tunnel",
		"frames encrypted and padded to constant size; host sees only the tunnel"},
	DualBoundary: {DualBoundary, "this work", "L2 strong + L5 compartment",
		"safe ring at L2; stack in an I/O compartment behind a single-distrust gate at L5"},
	DirectDevice: {DirectDevice, "TDISP / TEE-I/O (§3.4)", "L2 (attested device, IDE link)",
		"SPDM-attested NIC joins the TCB; the PCIe link is AEAD-protected; no driver hardening needed"},
}

// MetaOf returns a design's metadata.
func MetaOf(id DesignID) (Meta, error) {
	m, ok := metas[id]
	if !ok {
		return Meta{}, fmt.Errorf("core: unknown design %q", id)
	}
	return m, nil
}

// tunnel shim component weight (the encrypt/pad layer in tunnel.go).
var compTunnel = tcb.Component{Name: "tunnel-shim", LoC: 160, Role: "L2-in-TLS encapsulation"}

var (
	stackComponents = []tcb.Component{
		tcb.CompEther, tcb.CompARP, tcb.CompIPv4, tcb.CompUDP, tcb.CompTCP, tcb.CompNetstack,
	}
	appCore = []tcb.Component{tcb.CompApp, tcb.CompCTLS}
)

func prof(name string, comps ...[]tcb.Component) tcb.Profile {
	var all []tcb.Component
	for _, c := range comps {
		all = append(all, c...)
	}
	return tcb.Profile{Name: name, Components: all}
}

// TCBOf returns the two trust-domain profiles of a design: core is the
// code whose compromise directly exposes application data; teeTotal is
// everything running inside the TEE (for the dual boundary these differ
// — that is the point).
func TCBOf(id DesignID) (core, teeTotal tcb.Profile) {
	switch id {
	case HostSocket:
		p := prof(string(id), appCore, []tcb.Component{tcb.CompShim})
		return p, p
	case L2Virtio, L2VirtioHardened:
		p := prof(string(id), appCore, stackComponents, []tcb.Component{tcb.CompVirtio})
		return p, p
	case L2Netvsc, L2NetvscHardened:
		p := prof(string(id), appCore, stackComponents, []tcb.Component{tcb.CompNetvsc})
		return p, p
	case L2SafeRing:
		p := prof(string(id), appCore, stackComponents, []tcb.Component{tcb.CompSafering})
		return p, p
	case Tunnel:
		p := prof(string(id), appCore, stackComponents,
			[]tcb.Component{tcb.CompSafering, compTunnel, tcb.CompCTLS})
		return p, p
	case DualBoundary:
		core := prof(string(id)+"-core", appCore, []tcb.Component{tcb.CompGate})
		total := prof(string(id)+"-tee", appCore,
			[]tcb.Component{tcb.CompGate, tcb.CompSafering}, stackComponents)
		return core, total
	case DirectDevice:
		// The attested device's firmware joins the trust boundary — the
		// §3.4 trade-off in numbers.
		p := prof(string(id), appCore, stackComponents,
			[]tcb.Component{tcb.CompTDISP, tcb.CompDeviceFW})
		return p, p
	default:
		return tcb.Profile{Name: "unknown"}, tcb.Profile{Name: "unknown"}
	}
}
