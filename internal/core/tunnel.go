package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"

	"confio/internal/nic"
	"confio/internal/platform"
)

// tunnelNIC implements the LightBox-style design: every Ethernet frame is
// AEAD-sealed and padded to a constant outer size before it reaches the
// (already safe) transport, so the host and the network observe nothing
// but fixed-size opaque blobs between two endpoints — lower-than-network
// observability, paid for with per-frame crypto and padding bandwidth.
//
// Outer format, inside a minimal Ethernet shell so the simulated switch
// can still forward it:
//
//	dst[6] src[6] ethertype[2]=0x88B5 | nonce[12] | ct[padTo+16]
type tunnelNIC struct {
	inner nic.Guest
	aead  cipher.AEAD
	meter *platform.Meter
	padTo int
}

const tunnelEtherType = 0x88B5 // IEEE local experimental

var errTunnel = errors.New("core: tunnel decapsulation failed")

// newTunnelNIC wraps inner with tunnel encapsulation under key.
func newTunnelNIC(inner nic.Guest, key []byte, meter *platform.Meter) (*tunnelNIC, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	// Pad inner frames to the largest frame the inner MTU can produce,
	// so every outer frame has identical size.
	padTo := inner.MTU() + 14 + 2 // inner frame + length prefix
	return &tunnelNIC{inner: inner, aead: aead, meter: meter, padTo: padTo}, nil
}

func (t *tunnelNIC) MAC() [6]byte { return t.inner.MAC() }

// MTU leaves room for the encapsulation overhead relative to the inner
// transport's capacity; the inner stack keeps its MTU (the transport's
// frame capacity absorbs the overhead).
func (t *tunnelNIC) MTU() int { return t.inner.MTU() }

// seal encapsulates one inner frame into a constant-size outer frame.
func (t *tunnelNIC) seal(frame []byte) ([]byte, error) {
	if len(frame) < 14 {
		return nil, fmt.Errorf("core: tunnel runt frame %d", len(frame))
	}
	// Plaintext: length prefix + frame, padded to constant size.
	pt := make([]byte, t.padTo)
	pt[0], pt[1] = byte(len(frame)>>8), byte(len(frame))
	copy(pt[2:], frame)

	var nonce [12]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	outer := make([]byte, 0, 14+12+t.padTo+t.aead.Overhead())
	outer = append(outer, frame[0:6]...)  // outer dst = inner dst (endpoint identity)
	outer = append(outer, frame[6:12]...) // outer src
	outer = append(outer, byte(tunnelEtherType>>8), byte(tunnelEtherType&0xFF))
	outer = append(outer, nonce[:]...)
	outer = t.aead.Seal(outer, nonce[:], pt, outer[0:14])
	t.meter.Crypto(t.padTo)
	return outer, nil
}

// open decapsulates one outer frame, releasing it. A nil inner frame with
// a nil error means an undecryptable (attacker-injected or corrupted)
// frame that is silently dropped: DoS is out of scope and integrity holds
// because nothing decapsulates.
func (t *tunnelNIC) open(fr nic.Frame) (nic.Frame, error) {
	outer := fr.Bytes()
	if len(outer) < 14+12+t.aead.Overhead() {
		fr.Release()
		return nil, errTunnel
	}
	nonce := outer[14 : 14+12]
	pt, err := t.aead.Open(nil, nonce, outer[14+12:], outer[0:14])
	fr.Release()
	if err != nil {
		return nil, nil
	}
	t.meter.Crypto(t.padTo)
	if len(pt) < 2 {
		return nil, errTunnel
	}
	n := int(pt[0])<<8 | int(pt[1])
	if n < 14 || n > len(pt)-2 {
		return nil, errTunnel
	}
	return &nic.BufFrame{B: pt[2 : 2+n]}, nil
}

func (t *tunnelNIC) Send(frame []byte) error {
	outer, err := t.seal(frame)
	if err != nil {
		return err
	}
	return t.inner.Send(outer)
}

func (t *tunnelNIC) Recv() (nic.Frame, error) {
	fr, err := t.inner.Recv()
	if err != nil {
		return nil, err
	}
	inner, err := t.open(fr)
	if err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, nic.ErrEmpty // dropped undecryptable frame
	}
	return inner, nil
}

// SendBatch implements nic.BatchGuest: frames are sealed individually
// (per-frame crypto is this design's stated cost) but flushed to the
// transport as one batch when it supports batching.
func (t *tunnelNIC) SendBatch(frames [][]byte) (int, error) {
	outers := make([][]byte, len(frames))
	for i, f := range frames {
		o, err := t.seal(f)
		if err != nil {
			return 0, err
		}
		outers[i] = o
	}
	if bg, ok := t.inner.(nic.BatchGuest); ok {
		return bg.SendBatch(outers)
	}
	for i, o := range outers {
		if err := t.inner.Send(o); err != nil {
			return i, err
		}
	}
	return len(outers), nil
}

// RecvBatch implements nic.BatchGuest, decapsulating a burst dequeued
// with one batched receive. Undecryptable frames are dropped from the
// burst, so the returned count can be short of what the wire carried.
func (t *tunnelNIC) RecvBatch(out []nic.Frame) (int, error) {
	bg, ok := t.inner.(nic.BatchGuest)
	if !ok {
		n := 0
		for n < len(out) {
			fr, err := t.Recv()
			if err != nil {
				if n > 0 {
					return n, nil
				}
				return 0, err
			}
			out[n] = fr
			n++
		}
		return n, nil
	}
	raw := make([]nic.Frame, len(out))
	n, err := bg.RecvBatch(raw)
	m := 0
	for i := 0; i < n; i++ {
		inner, derr := t.open(raw[i])
		if derr != nil || inner == nil {
			continue // malformed or undecryptable: drop
		}
		out[m] = inner
		m++
	}
	return m, err
}
