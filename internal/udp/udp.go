// Package udp implements UDP datagram encoding and checksums for the
// in-TEE network stack.
package udp

import (
	"errors"
	"fmt"

	"confio/internal/ipv4"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// Datagram is a parsed UDP datagram. Payload aliases the input buffer.
type Datagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// ErrMalformed reports an unusable datagram.
var ErrMalformed = errors.New("udp: malformed datagram")

// ErrChecksum reports a checksum failure.
var ErrChecksum = errors.New("udp: bad checksum")

// Parse decodes and (when the checksum field is nonzero) verifies a UDP
// datagram carried between src and dst.
func Parse(src, dst ipv4.Addr, buf []byte) (Datagram, error) {
	if len(buf) < HeaderLen {
		return Datagram{}, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	length := int(buf[4])<<8 | int(buf[5])
	if length < HeaderLen || length > len(buf) {
		return Datagram{}, fmt.Errorf("%w: length %d of %d", ErrMalformed, length, len(buf))
	}
	ck := uint16(buf[6])<<8 | uint16(buf[7])
	if ck != 0 {
		if ipv4.TransportChecksum(src, dst, ipv4.ProtoUDP, buf[:length]) != 0 {
			return Datagram{}, ErrChecksum
		}
	}
	return Datagram{
		SrcPort: uint16(buf[0])<<8 | uint16(buf[1]),
		DstPort: uint16(buf[2])<<8 | uint16(buf[3]),
		Payload: buf[HeaderLen:length],
	}, nil
}

// Marshal appends an encoded datagram (with checksum) to dst.
func Marshal(dst []byte, src, dstIP ipv4.Addr, srcPort, dstPort uint16, payload []byte) []byte {
	length := HeaderLen + len(payload)
	start := len(dst)
	dst = append(dst,
		byte(srcPort>>8), byte(srcPort),
		byte(dstPort>>8), byte(dstPort),
		byte(length>>8), byte(length),
		0, 0,
	)
	dst = append(dst, payload...)
	ck := ipv4.TransportChecksum(src, dstIP, ipv4.ProtoUDP, dst[start:])
	if ck == 0 {
		ck = 0xFFFF // 0 means "no checksum" on the wire
	}
	dst[start+6] = byte(ck >> 8)
	dst[start+7] = byte(ck)
	return dst
}
