package udp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"confio/internal/ipv4"
)

var (
	srcIP = ipv4.Addr{192, 168, 1, 1}
	dstIP = ipv4.Addr{192, 168, 1, 2}
)

func TestRoundTrip(t *testing.T) {
	buf := Marshal(nil, srcIP, dstIP, 1234, 5678, []byte("datagram"))
	d, err := Parse(srcIP, dstIP, buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1234 || d.DstPort != 5678 || !bytes.Equal(d.Payload, []byte("datagram")) {
		t.Fatalf("round trip mismatch: %+v", d)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	buf := Marshal(nil, srcIP, dstIP, 1, 2, []byte("payload"))
	buf[HeaderLen] ^= 0xFF
	if _, err := Parse(srcIP, dstIP, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corruption: %v", err)
	}
	// Wrong pseudo-header (different dst) also fails.
	good := Marshal(nil, srcIP, dstIP, 1, 2, []byte("payload"))
	if _, err := Parse(srcIP, ipv4.Addr{9, 9, 9, 9}, good); !errors.Is(err, ErrChecksum) {
		t.Fatalf("pseudo-header: %v", err)
	}
}

func TestZeroChecksumSkipsVerification(t *testing.T) {
	buf := Marshal(nil, srcIP, dstIP, 1, 2, []byte("x"))
	buf[6], buf[7] = 0, 0 // sender opted out
	if _, err := Parse(srcIP, dstIP, buf); err != nil {
		t.Fatalf("zero checksum: %v", err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(srcIP, dstIP, make([]byte, 7)); !errors.Is(err, ErrMalformed) {
		t.Fatal("short datagram accepted")
	}
	buf := Marshal(nil, srcIP, dstIP, 1, 2, []byte("abc"))
	buf[4], buf[5] = 0xFF, 0xFF // length beyond buffer
	if _, err := Parse(srcIP, dstIP, buf); !errors.Is(err, ErrMalformed) {
		t.Fatal("oversized length accepted")
	}
	buf2 := Marshal(nil, srcIP, dstIP, 1, 2, []byte("abc"))
	buf2[4], buf2[5] = 0, 4 // length below header size
	if _, err := Parse(srcIP, dstIP, buf2); !errors.Is(err, ErrMalformed) {
		t.Fatal("undersized length accepted")
	}
}

func TestTrailingBytesIgnored(t *testing.T) {
	buf := Marshal(nil, srcIP, dstIP, 1, 2, []byte("abc"))
	buf = append(buf, 0xDE, 0xAD) // link-layer padding
	d, err := Parse(srcIP, dstIP, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, []byte("abc")) {
		t.Fatalf("payload = %q", d.Payload)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		buf := Marshal(nil, srcIP, dstIP, sp, dp, payload)
		d, err := Parse(srcIP, dstIP, buf)
		return err == nil && d.SrcPort == sp && d.DstPort == dp && bytes.Equal(d.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
