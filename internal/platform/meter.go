package platform

import (
	"fmt"
	"sync/atomic"
)

// Meter accumulates boundary events on a confidential I/O path. All
// methods are safe for concurrent use; transports and stacks share one
// meter per experiment run.
type Meter struct {
	teeCrossings  atomic.Uint64
	gateCrossings atomic.Uint64
	bytesCopied   atomic.Uint64
	checks        atomic.Uint64
	notifications atomic.Uint64
	publications  atomic.Uint64
	cryptoBytes   atomic.Uint64
	pagesShared   atomic.Uint64
	pagesRevoked  atomic.Uint64
	deaths        atomic.Uint64
	reincarnation atomic.Uint64
	stalls        atomic.Uint64
}

// CrossTEE records n world switches between the TEE and the host
// (hypercall/vmexit for confidential VMs, ocall/ecall for enclaves).
func (m *Meter) CrossTEE(n int) {
	if m != nil {
		m.teeCrossings.Add(uint64(n))
	}
}

// CrossGate records n intra-TEE compartment gate crossings (the paper's
// lightweight L5 boundary).
func (m *Meter) CrossGate(n int) {
	if m != nil {
		m.gateCrossings.Add(uint64(n))
	}
}

// Copy records n bytes copied across a trust boundary.
func (m *Meter) Copy(n int) {
	if m != nil {
		m.bytesCopied.Add(uint64(n))
	}
}

// Check records n validation checks executed on untrusted input.
func (m *Meter) Check(n int) {
	if m != nil {
		m.checks.Add(uint64(n))
	}
}

// Notify records n doorbell/interrupt notifications.
func (m *Meter) Notify(n int) {
	if m != nil {
		m.notifications.Add(uint64(n))
	}
}

// Publish records n shared index publications (producer/consumer stores
// made visible to the peer). A publication is an ordinary cached store —
// it carries no ModelNanos weight — but each one is a serialization point
// the peer may poll, so batched datapaths are judged by how few they
// issue per frame (see EXPERIMENTS.md "notifications per frame").
func (m *Meter) Publish(n int) {
	if m != nil {
		m.publications.Add(uint64(n))
	}
}

// Crypto records n bytes encrypted, decrypted or MACed on the I/O path.
func (m *Meter) Crypto(n int) {
	if m != nil {
		m.cryptoBytes.Add(uint64(n))
	}
}

// Share records n pages shared with the host.
func (m *Meter) Share(n int) {
	if m != nil {
		m.pagesShared.Add(uint64(n))
	}
}

// Revoke records n pages un-shared (revoked) from the host.
func (m *Meter) Revoke(n int) {
	if m != nil {
		m.pagesRevoked.Add(uint64(n))
	}
}

// Death records n device fail-dead transitions (a latched protocol
// violation or declared host stall). Liveness events carry no ModelNanos
// weight — they are not datapath work — but they are part of the cost
// story: every death means a full device teardown plus quarantine.
func (m *Meter) Death(n int) {
	if m != nil {
		m.deaths.Add(uint64(n))
	}
}

// Reincarnation records n successful device rebirths at a new epoch.
func (m *Meter) Reincarnation(n int) {
	if m != nil {
		m.reincarnation.Add(uint64(n))
	}
}

// Stall records n host-stall detections by the progress watchdog.
func (m *Meter) Stall(n int) {
	if m != nil {
		m.stalls.Add(uint64(n))
	}
}

// Costs is an immutable snapshot of a Meter.
type Costs struct {
	TEECrossings   uint64
	GateCrossings  uint64
	BytesCopied    uint64
	Checks         uint64
	Notifications  uint64
	IndexPublishes uint64
	CryptoBytes    uint64
	PagesShared    uint64
	PagesRevoked   uint64
	Deaths         uint64
	Reincarnations uint64
	StallsDetected uint64
}

// Snapshot captures the meter's current counters.
func (m *Meter) Snapshot() Costs {
	return Costs{
		TEECrossings:   m.teeCrossings.Load(),
		GateCrossings:  m.gateCrossings.Load(),
		BytesCopied:    m.bytesCopied.Load(),
		Checks:         m.checks.Load(),
		Notifications:  m.notifications.Load(),
		IndexPublishes: m.publications.Load(),
		CryptoBytes:    m.cryptoBytes.Load(),
		PagesShared:    m.pagesShared.Load(),
		PagesRevoked:   m.pagesRevoked.Load(),
		Deaths:         m.deaths.Load(),
		Reincarnations: m.reincarnation.Load(),
		StallsDetected: m.stalls.Load(),
	}
}

// Sub returns c - earlier, the events between two snapshots.
func (c Costs) Sub(earlier Costs) Costs {
	return Costs{
		TEECrossings:   c.TEECrossings - earlier.TEECrossings,
		GateCrossings:  c.GateCrossings - earlier.GateCrossings,
		BytesCopied:    c.BytesCopied - earlier.BytesCopied,
		Checks:         c.Checks - earlier.Checks,
		Notifications:  c.Notifications - earlier.Notifications,
		IndexPublishes: c.IndexPublishes - earlier.IndexPublishes,
		CryptoBytes:    c.CryptoBytes - earlier.CryptoBytes,
		PagesShared:    c.PagesShared - earlier.PagesShared,
		PagesRevoked:   c.PagesRevoked - earlier.PagesRevoked,
		Deaths:         c.Deaths - earlier.Deaths,
		Reincarnations: c.Reincarnations - earlier.Reincarnations,
		StallsDetected: c.StallsDetected - earlier.StallsDetected,
	}
}

// Add returns c + other.
func (c Costs) Add(other Costs) Costs {
	return Costs{
		TEECrossings:   c.TEECrossings + other.TEECrossings,
		GateCrossings:  c.GateCrossings + other.GateCrossings,
		BytesCopied:    c.BytesCopied + other.BytesCopied,
		Checks:         c.Checks + other.Checks,
		Notifications:  c.Notifications + other.Notifications,
		IndexPublishes: c.IndexPublishes + other.IndexPublishes,
		CryptoBytes:    c.CryptoBytes + other.CryptoBytes,
		PagesShared:    c.PagesShared + other.PagesShared,
		PagesRevoked:   c.PagesRevoked + other.PagesRevoked,
		Deaths:         c.Deaths + other.Deaths,
		Reincarnations: c.Reincarnations + other.Reincarnations,
		StallsDetected: c.StallsDetected + other.StallsDetected,
	}
}

func (c Costs) String() string {
	s := fmt.Sprintf("tee=%d gate=%d copied=%dB checks=%d notif=%d pub=%d crypto=%dB shared=%dpg revoked=%dpg",
		c.TEECrossings, c.GateCrossings, c.BytesCopied, c.Checks, c.Notifications, c.IndexPublishes, c.CryptoBytes, c.PagesShared, c.PagesRevoked)
	// Liveness events are zero in every healthy run; appending them only
	// when present keeps the steady-state benchmark lines unchanged.
	if c.Deaths != 0 || c.Reincarnations != 0 || c.StallsDetected != 0 {
		s += fmt.Sprintf(" deaths=%d reinc=%d stalls=%d", c.Deaths, c.Reincarnations, c.StallsDetected)
	}
	return s
}

// CostParams weights each event class in nanoseconds. The defaults are
// calibrated to publicly reported magnitudes for the hardware the paper
// targets; experiments care about ratios and crossover points, not
// absolute values, and sweeps vary these parameters explicitly
// (e.g. BenchmarkRevocationVsCopy varies RevokePageNs).
type CostParams struct {
	TEECrossNs  float64 // world switch (vmexit / ocall+eexit)
	GateCrossNs float64 // intra-TEE compartment switch (MPK-like)
	CopyByteNs  float64 // per-byte cross-boundary copy
	CheckNs     float64 // per validation check on untrusted input
	NotifyNs    float64 // doorbell / injected interrupt
	CryptoNs    float64 // per byte of AEAD work
	SharePageNs float64 // share a page with the host
	RevokeNs    float64 // revoke (un-share) a page: EPT update + flush
}

// DefaultCostParams returns the calibration used throughout EXPERIMENTS.md.
func DefaultCostParams() CostParams {
	return CostParams{
		TEECrossNs:  4000, // ~4 µs: SGX ocall round trip / CVM vmexit+resume
		GateCrossNs: 120,  // ~120 ns: WRPKRU-style domain switch pair
		CopyByteNs:  0.06, // ~16 GB/s effective single-core memcpy
		CheckNs:     2,    // branch + load on untrusted input
		NotifyNs:    1500, // interrupt injection path
		CryptoNs:    0.45, // ~2.2 GB/s single-core AES-GCM
		SharePageNs: 900,  // page-table/RMP update
		RevokeNs:    2500, // EPT/RMP update + TLB shootdown
	}
}

// ModelNanos converts an event snapshot into modelled time under p.
func (c Costs) ModelNanos(p CostParams) float64 {
	return float64(c.TEECrossings)*p.TEECrossNs +
		float64(c.GateCrossings)*p.GateCrossNs +
		float64(c.BytesCopied)*p.CopyByteNs +
		float64(c.Checks)*p.CheckNs +
		float64(c.Notifications)*p.NotifyNs +
		float64(c.CryptoBytes)*p.CryptoNs +
		float64(c.PagesShared)*p.SharePageNs +
		float64(c.PagesRevoked)*p.RevokeNs
}
