package platform

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Meter accumulates boundary events on a confidential I/O path. All
// methods are safe for concurrent use; transports and stacks share one
// meter per experiment run.
type Meter struct {
	teeCrossings  atomic.Uint64
	gateCrossings atomic.Uint64
	bytesCopied   atomic.Uint64
	checks        atomic.Uint64
	notifications atomic.Uint64
	suppressed    atomic.Uint64
	publications  atomic.Uint64
	cryptoBytes   atomic.Uint64
	pagesShared   atomic.Uint64
	pagesRevoked  atomic.Uint64
	deaths        atomic.Uint64
	reincarnation atomic.Uint64
	stalls        atomic.Uint64
	frames        atomic.Uint64
	drops         atomic.Uint64
	evictions     atomic.Uint64

	// lat is the HDR-style log-linear latency histogram behind
	// RecordLatency/LatencyPercentiles (see latIndex for the bucket
	// scheme). Fixed-size atomics: recording is lock-free and the whole
	// histogram merges across a MeterBank by bucket-wise addition.
	lat latHist
}

// CrossTEE records n world switches between the TEE and the host
// (hypercall/vmexit for confidential VMs, ocall/ecall for enclaves).
func (m *Meter) CrossTEE(n int) {
	if m != nil {
		m.teeCrossings.Add(uint64(n))
	}
}

// CrossGate records n intra-TEE compartment gate crossings (the paper's
// lightweight L5 boundary).
func (m *Meter) CrossGate(n int) {
	if m != nil {
		m.gateCrossings.Add(uint64(n))
	}
}

// Copy records n bytes copied across a trust boundary.
func (m *Meter) Copy(n int) {
	if m != nil {
		m.bytesCopied.Add(uint64(n))
	}
}

// Check records n validation checks executed on untrusted input.
func (m *Meter) Check(n int) {
	if m != nil {
		m.checks.Add(uint64(n))
	}
}

// Notify records n doorbell/interrupt notifications.
func (m *Meter) Notify(n int) {
	if m != nil {
		m.notifications.Add(uint64(n))
	}
}

// NotifySuppressed records n doorbell rings the event-idx predicate
// elided: work the peer will discover by polling, with no boundary
// crossing spent. The pair (Notifications, NotifsSuppressed) is the
// suppression story a benchmark reports.
func (m *Meter) NotifySuppressed(n int) {
	if m != nil {
		m.suppressed.Add(uint64(n))
	}
}

// Publish records n shared index publications (producer/consumer stores
// made visible to the peer). A publication is an ordinary cached store —
// it carries no ModelNanos weight — but each one is a serialization point
// the peer may poll, so batched datapaths are judged by how few they
// issue per frame (see EXPERIMENTS.md "notifications per frame").
func (m *Meter) Publish(n int) {
	if m != nil {
		m.publications.Add(uint64(n))
	}
}

// Crypto records n bytes encrypted, decrypted or MACed on the I/O path.
func (m *Meter) Crypto(n int) {
	if m != nil {
		m.cryptoBytes.Add(uint64(n))
	}
}

// Share records n pages shared with the host.
func (m *Meter) Share(n int) {
	if m != nil {
		m.pagesShared.Add(uint64(n))
	}
}

// Revoke records n pages un-shared (revoked) from the host.
func (m *Meter) Revoke(n int) {
	if m != nil {
		m.pagesRevoked.Add(uint64(n))
	}
}

// Death records n device fail-dead transitions (a latched protocol
// violation or declared host stall). Liveness events carry no ModelNanos
// weight — they are not datapath work — but they are part of the cost
// story: every death means a full device teardown plus quarantine.
func (m *Meter) Death(n int) {
	if m != nil {
		m.deaths.Add(uint64(n))
	}
}

// Reincarnation records n successful device rebirths at a new epoch.
func (m *Meter) Reincarnation(n int) {
	if m != nil {
		m.reincarnation.Add(uint64(n))
	}
}

// Stall records n host-stall detections by the progress watchdog.
func (m *Meter) Stall(n int) {
	if m != nil {
		m.stalls.Add(uint64(n))
	}
}

// Frame records n application-level frames (messages) carried for the
// principal this meter is attributed to — the gateway charges each
// relayed message to its tenant's meter, so throughput blame is
// per-tenant, not device-global.
func (m *Meter) Frame(n int) {
	if m != nil {
		m.frames.Add(uint64(n))
	}
}

// Drop records n frames or flows discarded for the metered principal
// (admission refusals, shed flows, quota overflow). Drops carry no
// ModelNanos weight; they are the blame column of the fairness story.
func (m *Meter) Drop(n int) {
	if m != nil {
		m.drops.Add(uint64(n))
	}
}

// Evict records n sticky tenant evictions (a per-tenant fault budget
// exhausted — the tenant-scoped analogue of device fail-dead).
func (m *Meter) Evict(n int) {
	if m != nil {
		m.evictions.Add(uint64(n))
	}
}

// Costs is an immutable snapshot of a Meter.
type Costs struct {
	TEECrossings     uint64
	GateCrossings    uint64
	BytesCopied      uint64
	Checks           uint64
	Notifications    uint64
	NotifsSuppressed uint64
	IndexPublishes   uint64
	CryptoBytes      uint64
	PagesShared      uint64
	PagesRevoked     uint64
	Deaths           uint64
	Reincarnations   uint64
	StallsDetected   uint64
	Frames           uint64
	Drops            uint64
	Evictions        uint64
}

// Snapshot captures the meter's current counters.
func (m *Meter) Snapshot() Costs {
	return Costs{
		TEECrossings:     m.teeCrossings.Load(),
		GateCrossings:    m.gateCrossings.Load(),
		BytesCopied:      m.bytesCopied.Load(),
		Checks:           m.checks.Load(),
		Notifications:    m.notifications.Load(),
		NotifsSuppressed: m.suppressed.Load(),
		IndexPublishes:   m.publications.Load(),
		CryptoBytes:      m.cryptoBytes.Load(),
		PagesShared:      m.pagesShared.Load(),
		PagesRevoked:     m.pagesRevoked.Load(),
		Deaths:           m.deaths.Load(),
		Reincarnations:   m.reincarnation.Load(),
		StallsDetected:   m.stalls.Load(),
		Frames:           m.frames.Load(),
		Drops:            m.drops.Load(),
		Evictions:        m.evictions.Load(),
	}
}

// Sub returns c - earlier, the events between two snapshots.
func (c Costs) Sub(earlier Costs) Costs {
	return Costs{
		TEECrossings:     c.TEECrossings - earlier.TEECrossings,
		GateCrossings:    c.GateCrossings - earlier.GateCrossings,
		BytesCopied:      c.BytesCopied - earlier.BytesCopied,
		Checks:           c.Checks - earlier.Checks,
		Notifications:    c.Notifications - earlier.Notifications,
		NotifsSuppressed: c.NotifsSuppressed - earlier.NotifsSuppressed,
		IndexPublishes:   c.IndexPublishes - earlier.IndexPublishes,
		CryptoBytes:      c.CryptoBytes - earlier.CryptoBytes,
		PagesShared:      c.PagesShared - earlier.PagesShared,
		PagesRevoked:     c.PagesRevoked - earlier.PagesRevoked,
		Deaths:           c.Deaths - earlier.Deaths,
		Reincarnations:   c.Reincarnations - earlier.Reincarnations,
		StallsDetected:   c.StallsDetected - earlier.StallsDetected,
		Frames:           c.Frames - earlier.Frames,
		Drops:            c.Drops - earlier.Drops,
		Evictions:        c.Evictions - earlier.Evictions,
	}
}

// Add returns c + other.
func (c Costs) Add(other Costs) Costs {
	return Costs{
		TEECrossings:     c.TEECrossings + other.TEECrossings,
		GateCrossings:    c.GateCrossings + other.GateCrossings,
		BytesCopied:      c.BytesCopied + other.BytesCopied,
		Checks:           c.Checks + other.Checks,
		Notifications:    c.Notifications + other.Notifications,
		NotifsSuppressed: c.NotifsSuppressed + other.NotifsSuppressed,
		IndexPublishes:   c.IndexPublishes + other.IndexPublishes,
		CryptoBytes:      c.CryptoBytes + other.CryptoBytes,
		PagesShared:      c.PagesShared + other.PagesShared,
		PagesRevoked:     c.PagesRevoked + other.PagesRevoked,
		Deaths:           c.Deaths + other.Deaths,
		Reincarnations:   c.Reincarnations + other.Reincarnations,
		StallsDetected:   c.StallsDetected + other.StallsDetected,
		Frames:           c.Frames + other.Frames,
		Drops:            c.Drops + other.Drops,
		Evictions:        c.Evictions + other.Evictions,
	}
}

func (c Costs) String() string {
	s := fmt.Sprintf("tee=%d gate=%d copied=%dB checks=%d notif=%d pub=%d crypto=%dB shared=%dpg revoked=%dpg",
		c.TEECrossings, c.GateCrossings, c.BytesCopied, c.Checks, c.Notifications, c.IndexPublishes, c.CryptoBytes, c.PagesShared, c.PagesRevoked)
	// Suppressed notifications (like liveness events below) are zero
	// unless the deployment enables event-idx; appending them only when
	// present keeps the steady-state benchmark lines unchanged.
	if c.NotifsSuppressed != 0 {
		s += fmt.Sprintf(" suppressed=%d", c.NotifsSuppressed)
	}
	// Liveness events are zero in every healthy run; appending them only
	// when present keeps the steady-state benchmark lines unchanged.
	if c.Deaths != 0 || c.Reincarnations != 0 || c.StallsDetected != 0 {
		s += fmt.Sprintf(" deaths=%d reinc=%d stalls=%d", c.Deaths, c.Reincarnations, c.StallsDetected)
	}
	// Tenant-attribution counters only appear on gateway meters.
	if c.Frames != 0 || c.Drops != 0 || c.Evictions != 0 {
		s += fmt.Sprintf(" frames=%d drops=%d evict=%d", c.Frames, c.Drops, c.Evictions)
	}
	return s
}

// CostParams weights each event class in nanoseconds. The defaults are
// calibrated to publicly reported magnitudes for the hardware the paper
// targets; experiments care about ratios and crossover points, not
// absolute values, and sweeps vary these parameters explicitly
// (e.g. BenchmarkRevocationVsCopy varies RevokePageNs).
type CostParams struct {
	TEECrossNs  float64 // world switch (vmexit / ocall+eexit)
	GateCrossNs float64 // intra-TEE compartment switch (MPK-like)
	CopyByteNs  float64 // per-byte cross-boundary copy
	CheckNs     float64 // per validation check on untrusted input
	NotifyNs    float64 // doorbell / injected interrupt
	CryptoNs    float64 // per byte of AEAD work
	SharePageNs float64 // share a page with the host
	RevokeNs    float64 // revoke (un-share) a page: EPT update + flush
}

// DefaultCostParams returns the calibration used throughout EXPERIMENTS.md.
func DefaultCostParams() CostParams {
	return CostParams{
		TEECrossNs:  4000, // ~4 µs: SGX ocall round trip / CVM vmexit+resume
		GateCrossNs: 120,  // ~120 ns: WRPKRU-style domain switch pair
		CopyByteNs:  0.06, // ~16 GB/s effective single-core memcpy
		CheckNs:     2,    // branch + load on untrusted input
		NotifyNs:    1500, // interrupt injection path
		CryptoNs:    0.45, // ~2.2 GB/s single-core AES-GCM
		SharePageNs: 900,  // page-table/RMP update
		RevokeNs:    2500, // EPT/RMP update + TLB shootdown
	}
}

// --- Latency histogram (HDR-style log-linear) ---

// The histogram trades a fixed, small relative error for lock-free
// constant-space recording: nanosecond values are bucketed by their
// power-of-two magnitude (the "major") subdivided into latSub linear
// sub-buckets, so every bucket is at most 1/latSub wide relative to its
// value (~6.25% with latSub=16). That is the classic HDR layout, sized
// here for uint64 nanoseconds: values below latSub map one-to-one, and
// the largest major (2^63) still lands in range.

const (
	latSubBits = 4
	latSub     = 1 << latSubBits // linear sub-buckets per power of two
	// latBuckets covers majors latSubBits..63 at latSub buckets each,
	// plus the latSub exact buckets for values < latSub.
	latBuckets = (64-latSubBits)*latSub + latSub
)

// latHist is the bucket array; index with latIndex.
type latHist struct {
	count   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

// latIndex maps a nanosecond value to its bucket.
func latIndex(v uint64) int {
	if v < latSub {
		return int(v)
	}
	major := bits.Len64(v) - 1 // >= latSubBits
	sub := (v >> (uint(major) - latSubBits)) & (latSub - 1)
	return (major-latSubBits+1)*latSub + int(sub)
}

// latValue returns the lower bound of bucket idx — the value
// LatencyPercentiles reports for samples landing there (under-reporting
// by at most one sub-bucket width, ~6.25%).
func latValue(idx int) uint64 {
	if idx < latSub {
		return uint64(idx)
	}
	major := uint(idx/latSub) - 1 + latSubBits
	sub := uint64(idx % latSub)
	return 1<<major + sub<<(major-latSubBits)
}

// RecordLatency adds one operation latency to the histogram. Negative
// durations (a clock hiccup) record as zero. Nil-safe, lock-free.
func (m *Meter) RecordLatency(d time.Duration) {
	if m == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	m.lat.buckets[latIndex(v)].Add(1)
	m.lat.count.Add(1)
}

// LatencySummary is one percentile snapshot of a latency histogram.
// Percentile values carry the histogram's bucket resolution (~6%
// relative error); Count is exact.
type LatencySummary struct {
	Count          uint64
	P50, P99, P999 time.Duration
}

func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v", s.Count, s.P50, s.P99, s.P999)
}

// latSnapshot accumulates the histogram's buckets into dst and returns
// the total sample count added (the merge primitive MeterBank uses).
//
// The count is read BEFORE the buckets: RecordLatency increments the
// bucket first and the count second, so a count read first is a lower
// bound on what the subsequent bucket sweep will see. Read the other
// way around, a concurrent recorder could leave the merge with
// count > sum(buckets), and the percentile walk would run off the end
// of the array with its tail targets unresolved (a torn merge the
// -race stress test pins).
func (m *Meter) latSnapshot(dst *[latBuckets]uint64) uint64 {
	if m == nil {
		return 0
	}
	count := m.lat.count.Load()
	for i := range dst {
		dst[i] += m.lat.buckets[i].Load()
	}
	return count
}

// latPercentiles walks an accumulated bucket array once, lifting the
// p50/p99/p999 bucket lower bounds.
func latPercentiles(buckets *[latBuckets]uint64, count uint64) LatencySummary {
	s := LatencySummary{Count: count}
	if count == 0 {
		return s
	}
	// Rank of the q-quantile in a population of count samples
	// (nearest-rank definition, 1-based).
	rank := func(q float64) uint64 {
		r := uint64(q * float64(count))
		if r < 1 {
			r = 1
		}
		return r
	}
	targets := [3]uint64{rank(0.50), rank(0.99), rank(0.999)}
	out := [3]*time.Duration{&s.P50, &s.P99, &s.P999}
	seen := uint64(0)
	next := 0
	for i := 0; i < latBuckets && next < len(targets); i++ {
		seen += buckets[i]
		for next < len(targets) && seen >= targets[next] {
			*out[next] = time.Duration(latValue(i))
			next++
		}
	}
	return s
}

// LatencyPercentiles summarizes every latency recorded so far.
func (m *Meter) LatencyPercentiles() LatencySummary {
	var buckets [latBuckets]uint64
	count := m.latSnapshot(&buckets)
	return latPercentiles(&buckets, count)
}

// ModelNanos converts an event snapshot into modelled time under p.
func (c Costs) ModelNanos(p CostParams) float64 {
	return float64(c.TEECrossings)*p.TEECrossNs +
		float64(c.GateCrossings)*p.GateCrossNs +
		float64(c.BytesCopied)*p.CopyByteNs +
		float64(c.Checks)*p.CheckNs +
		float64(c.Notifications)*p.NotifyNs +
		float64(c.CryptoBytes)*p.CryptoNs +
		float64(c.PagesShared)*p.SharePageNs +
		float64(c.PagesRevoked)*p.RevokeNs
}
