package platform

import (
	"fmt"
	"sort"
	"sync"
)

// TenantBank is the per-tenant sibling of MeterBank: a registry of
// Meters keyed by tenant identifier instead of queue index. Where the
// MeterBank answers "which queue is hot", the TenantBank answers "which
// tenant is to blame" — the gateway charges every relayed frame, shed
// flow, admission refusal and eviction to the owning tenant's meter, so
// a noisy or hostile tenant is attributable from the counters alone.
//
// Tenants appear lazily on first charge and are never removed (an
// evicted tenant's counters are exactly the audit record worth
// keeping). A nil *TenantBank is valid everywhere, mirroring the nil
// *Meter / nil *MeterBank convention.
//
// All methods are safe for concurrent use; Meter is the hot-path call
// and takes only a read lock once the tenant exists.
type TenantBank struct {
	mu     sync.RWMutex
	meters map[uint64]*Meter
}

// NewTenantBank allocates an empty bank.
func NewTenantBank() *TenantBank {
	return &TenantBank{meters: make(map[uint64]*Meter)}
}

// Meter returns tenant id's meter, allocating it on first use. Returns
// nil when the bank is nil (and every Meter method is nil-safe).
func (b *TenantBank) Meter(id uint64) *Meter {
	if b == nil {
		return nil
	}
	b.mu.RLock()
	m := b.meters[id]
	b.mu.RUnlock()
	if m != nil {
		return m
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if m = b.meters[id]; m == nil {
		m = &Meter{}
		b.meters[id] = m
	}
	return m
}

// Len returns the number of tenants metered so far.
func (b *TenantBank) Len() int {
	if b == nil {
		return 0
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.meters)
}

// IDs returns every metered tenant id in ascending order (deterministic
// for tables and tests).
func (b *TenantBank) IDs() []uint64 {
	if b == nil {
		return nil
	}
	b.mu.RLock()
	ids := make([]uint64, 0, len(b.meters))
	for id := range b.meters {
		ids = append(ids, id)
	}
	b.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Tenant returns tenant id's cost snapshot (zero Costs when the tenant
// has never been charged).
func (b *TenantBank) Tenant(id uint64) Costs {
	if b == nil {
		return Costs{}
	}
	b.mu.RLock()
	m := b.meters[id]
	b.mu.RUnlock()
	if m == nil {
		return Costs{}
	}
	return m.Snapshot()
}

// Snapshot returns the aggregated costs across every tenant.
func (b *TenantBank) Snapshot() Costs {
	var total Costs
	if b == nil {
		return total
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, m := range b.meters {
		total = total.Add(m.Snapshot())
	}
	return total
}

// TenantLatency returns tenant id's own latency percentile summary —
// the per-tenant tail the fairness experiments compare across tenants.
func (b *TenantBank) TenantLatency(id uint64) LatencySummary {
	if b == nil {
		return LatencySummary{}
	}
	b.mu.RLock()
	m := b.meters[id]
	b.mu.RUnlock()
	if m == nil {
		return LatencySummary{}
	}
	return m.LatencyPercentiles()
}

// LatencyPercentiles merges every tenant's histogram bucket-wise and
// summarizes the gateway-level distribution, leaving each tenant's own
// histogram untouched.
func (b *TenantBank) LatencyPercentiles() LatencySummary {
	if b == nil {
		return LatencySummary{}
	}
	var buckets [latBuckets]uint64
	count := uint64(0)
	b.mu.RLock()
	for _, m := range b.meters {
		count += m.latSnapshot(&buckets)
	}
	b.mu.RUnlock()
	return latPercentiles(&buckets, count)
}

func (b *TenantBank) String() string {
	return fmt.Sprintf("tenantbank(%d tenants): %s", b.Len(), b.Snapshot())
}
