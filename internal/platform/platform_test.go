package platform

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterCountsAndSnapshot(t *testing.T) {
	var m Meter
	m.CrossTEE(2)
	m.CrossGate(3)
	m.Copy(100)
	m.Check(5)
	m.Notify(1)
	m.Crypto(64)
	m.Share(4)
	m.Revoke(2)
	c := m.Snapshot()
	want := Costs{TEECrossings: 2, GateCrossings: 3, BytesCopied: 100, Checks: 5,
		Notifications: 1, CryptoBytes: 64, PagesShared: 4, PagesRevoked: 2}
	if c != want {
		t.Fatalf("snapshot = %+v, want %+v", c, want)
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.CrossTEE(1)
	m.CrossGate(1)
	m.Copy(1)
	m.Check(1)
	m.Notify(1)
	m.Crypto(1)
	m.Share(1)
	m.Revoke(1)
}

func TestCostsSubAddString(t *testing.T) {
	a := Costs{TEECrossings: 5, BytesCopied: 100}
	b := Costs{TEECrossings: 2, BytesCopied: 40}
	d := a.Sub(b)
	if d.TEECrossings != 3 || d.BytesCopied != 60 {
		t.Fatalf("Sub = %+v", d)
	}
	s := a.Add(b)
	if s.TEECrossings != 7 || s.BytesCopied != 140 {
		t.Fatalf("Add = %+v", s)
	}
	if !strings.Contains(a.String(), "tee=5") {
		t.Fatalf("String = %q", a.String())
	}
}

func TestModelNanos(t *testing.T) {
	p := CostParams{TEECrossNs: 1000, CopyByteNs: 1}
	c := Costs{TEECrossings: 3, BytesCopied: 500}
	if got := c.ModelNanos(p); got != 3500 {
		t.Fatalf("ModelNanos = %v, want 3500", got)
	}
	// Default params: a TEE crossing dwarfs a gate crossing — the premise
	// of the paper's dual-boundary argument.
	dp := DefaultCostParams()
	if dp.TEECrossNs <= 10*dp.GateCrossNs {
		t.Fatalf("calibration inverted: TEE %v vs gate %v", dp.TEECrossNs, dp.GateCrossNs)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Copy(1)
				m.CrossTEE(1)
			}
		}()
	}
	wg.Wait()
	c := m.Snapshot()
	if c.BytesCopied != 8000 || c.TEECrossings != 8000 {
		t.Fatalf("lost updates: %+v", c)
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(PageSize-1, nil); err == nil {
		t.Error("accepted non-page-multiple size")
	}
	if _, err := NewWindow(3*PageSize, nil); err == nil {
		t.Error("accepted non-power-of-two size (region must reject)")
	}
	w, err := NewWindow(4*PageSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Pages() != 4 {
		t.Fatalf("Pages = %d", w.Pages())
	}
	if w.SharedPages() != 4 {
		t.Fatalf("initially shared = %d", w.SharedPages())
	}
}

func TestRevokeBlocksHost(t *testing.T) {
	var m Meter
	w, err := NewWindow(4*PageSize, &m)
	if err != nil {
		t.Fatal(err)
	}
	hv := w.HostView()
	if err := hv.WriteAt([]byte("hello"), PageSize); err != nil {
		t.Fatal(err)
	}

	w.Revoke(PageSize, 10) // revoke page 1
	if err := hv.WriteAt([]byte("evil"), PageSize+100); !errors.Is(err, ErrRevoked) {
		t.Fatalf("host write to revoked page: %v", err)
	}
	buf := make([]byte, 4)
	if err := hv.ReadAt(buf, PageSize); !errors.Is(err, ErrRevoked) {
		t.Fatalf("host read of revoked page: %v", err)
	}
	// Other pages still work.
	if err := hv.WriteAt([]byte("fine"), 0); err != nil {
		t.Fatal(err)
	}
	// Guest always has access.
	got := make([]byte, 5)
	w.Region().ReadAt(got, PageSize)
	if string(got) != "hello" {
		t.Fatalf("guest read %q", got)
	}

	w.Reshare(PageSize, 1)
	if err := hv.WriteAt([]byte("ok"), PageSize); err != nil {
		t.Fatalf("after reshare: %v", err)
	}
	c := m.Snapshot()
	if c.PagesRevoked != 1 {
		t.Fatalf("PagesRevoked = %d, want 1", c.PagesRevoked)
	}
	if c.PagesShared != 4+1 {
		t.Fatalf("PagesShared = %d, want 5", c.PagesShared)
	}
}

func TestRevokeSpanningPages(t *testing.T) {
	w, _ := NewWindow(8*PageSize, nil)
	// Range crossing pages 2,3,4.
	w.Revoke(2*PageSize+100, 2*PageSize)
	if got := w.SharedPages(); got != 5 {
		t.Fatalf("SharedPages = %d, want 5", got)
	}
	hv := w.HostView()
	if _, err := hv.U32(3 * PageSize); !errors.Is(err, ErrRevoked) {
		t.Fatal("page 3 should be revoked")
	}
	if _, err := hv.U32(5 * PageSize); err != nil {
		t.Fatalf("page 5 should be shared: %v", err)
	}
}

func TestRevokeIdempotent(t *testing.T) {
	var m Meter
	w, _ := NewWindow(2*PageSize, &m)
	w.Revoke(0, PageSize)
	w.Revoke(0, PageSize)
	if m.Snapshot().PagesRevoked != 1 {
		t.Fatalf("double revoke double counted: %d", m.Snapshot().PagesRevoked)
	}
	w.Revoke(0, 0) // no-op
	if m.Snapshot().PagesRevoked != 1 {
		t.Fatal("zero-length revoke changed state")
	}
}

func TestHostViewScalarFaults(t *testing.T) {
	w, _ := NewWindow(2*PageSize, nil)
	hv := w.HostView()
	if err := hv.SetU64(8, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := hv.U64(8); err != nil || v != 42 {
		t.Fatalf("U64 = %d, %v", v, err)
	}
	if err := hv.SetU32(16, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := hv.U32(16); err != nil || v != 7 {
		t.Fatalf("U32 = %d, %v", v, err)
	}
	w.Revoke(0, PageSize)
	if err := hv.SetU64(8, 1); !errors.Is(err, ErrRevoked) {
		t.Fatal("SetU64 on revoked page")
	}
	if _, err := hv.U32(8); !errors.Is(err, ErrRevoked) {
		t.Fatal("U32 on revoked page")
	}
	if err := hv.SetU32(8, 1); !errors.Is(err, ErrRevoked) {
		t.Fatal("SetU32 on revoked page")
	}
	if _, err := hv.U64(8); !errors.Is(err, ErrRevoked) {
		t.Fatal("U64 on revoked page")
	}
}

// Property: revoking then resharing any range restores full host access,
// and SharedPages never leaves [0, Pages].
func TestRevokeReshareProperty(t *testing.T) {
	w, _ := NewWindow(8*PageSize, nil)
	f := func(off uint64, n uint16) bool {
		w.Revoke(off, int(n))
		sp := w.SharedPages()
		if sp < 0 || sp > w.Pages() {
			return false
		}
		w.Reshare(off, int(n))
		return w.SharedPages() == w.Pages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
