package platform

import "fmt"

// MeterBank is a fixed set of per-queue Meters plus an aggregated device
// view. Multi-queue transports charge each queue's boundary events to its
// own meter so per-queue hot spots stay visible, while experiments that
// only care about the device total read the aggregated snapshot.
//
// A nil *MeterBank is valid everywhere, mirroring the nil *Meter
// convention: Queue returns nil and Snapshot returns zero Costs.
type MeterBank struct {
	meters []*Meter
}

// NewMeterBank allocates n independent meters.
func NewMeterBank(n int) *MeterBank {
	b := &MeterBank{meters: make([]*Meter, n)}
	for i := range b.meters {
		b.meters[i] = &Meter{}
	}
	return b
}

// Len returns the number of queues metered.
func (b *MeterBank) Len() int {
	if b == nil {
		return 0
	}
	return len(b.meters)
}

// Queue returns queue i's meter, or nil when the bank is nil.
func (b *MeterBank) Queue(i int) *Meter {
	if b == nil {
		return nil
	}
	return b.meters[i]
}

// Snapshot returns the aggregated device costs: the sum of every queue's
// counters at one point in time.
func (b *MeterBank) Snapshot() Costs {
	var total Costs
	if b == nil {
		return total
	}
	for _, m := range b.meters {
		total = total.Add(m.Snapshot())
	}
	return total
}

// QueueSnapshots returns one snapshot per queue, index-aligned with the
// bank's queues.
func (b *MeterBank) QueueSnapshots() []Costs {
	if b == nil {
		return nil
	}
	out := make([]Costs, len(b.meters))
	for i, m := range b.meters {
		out[i] = m.Snapshot()
	}
	return out
}

// LatencyPercentiles merges every queue's latency histogram bucket-wise
// and summarizes the device-level distribution — the per-queue
// histograms stay untouched, so queue-local tails remain visible via
// Queue(i).LatencyPercentiles().
func (b *MeterBank) LatencyPercentiles() LatencySummary {
	if b == nil {
		return LatencySummary{}
	}
	var buckets [latBuckets]uint64
	count := uint64(0)
	for _, m := range b.meters {
		count += m.latSnapshot(&buckets)
	}
	return latPercentiles(&buckets, count)
}

func (b *MeterBank) String() string {
	return fmt.Sprintf("meterbank(%d queues): %s", b.Len(), b.Snapshot())
}
