package platform

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMeterBankLatencyMergeRace hammers RecordLatency on every queue of
// a bank while LatencyPercentiles merges concurrently. Run under -race
// it pins two properties of the merge:
//
//  1. No torn counts: a merge must never observe count > sum(buckets).
//     RecordLatency increments bucket-then-count, and latSnapshot reads
//     count-then-buckets, so every merged summary has its percentile
//     targets resolved — P50 <= P99 <= P999 with none left at the zero
//     value while smaller percentiles resolved above it.
//  2. Monotone counts: Count never decreases across successive merges,
//     and the final quiesced merge sees exactly the recorded total.
func TestMeterBankLatencyMergeRace(t *testing.T) {
	const (
		queues    = 4
		recorders = 2 // per queue
		perRec    = 5000
	)
	bank := NewMeterBank(queues)

	// The sample population spans several histogram majors so the
	// percentile walk has real distance to cover while buckets churn.
	samples := []time.Duration{
		3, 17 * time.Nanosecond, 900 * time.Nanosecond,
		7 * time.Microsecond, 250 * time.Microsecond, 4 * time.Millisecond,
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for q := 0; q < queues; q++ {
		m := bank.Queue(q)
		for r := 0; r < recorders; r++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < perRec; i++ {
					m.RecordLatency(samples[(seed+i)%len(samples)])
				}
			}(q*recorders + r)
		}
	}

	// Merge continuously until the recorders finish.
	var mergerWG sync.WaitGroup
	mergerWG.Add(1)
	merges := 0
	go func() {
		defer mergerWG.Done()
		prev := uint64(0)
		for !stop.Load() {
			s := bank.LatencyPercentiles()
			merges++
			if s.Count < prev {
				t.Errorf("merge %d: count went backwards: %d -> %d", merges, prev, s.Count)
				return
			}
			prev = s.Count
			if s.Count == 0 {
				continue
			}
			if s.P50 > s.P99 || s.P99 > s.P999 {
				t.Errorf("merge %d: non-monotone percentiles: %v", merges, s)
				return
			}
			// A torn merge (count > sum(buckets)) leaves tail targets
			// unresolved at zero while earlier ones resolved nonzero.
			if s.P999 == 0 && s.P50 > 0 {
				t.Errorf("merge %d: tail target unresolved (torn merge): %v", merges, s)
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	mergerWG.Wait()

	want := uint64(queues * recorders * perRec)
	final := bank.LatencyPercentiles()
	if final.Count != want {
		t.Fatalf("final merged count = %d, want %d", final.Count, want)
	}
	if final.P50 > final.P99 || final.P99 > final.P999 {
		t.Fatalf("final percentiles non-monotone: %v", final)
	}
	// The largest sample must be visible somewhere at or below P999's
	// bucket; with 1/6 of samples at 4ms, P999 lands in that major.
	if final.P999 < time.Millisecond {
		t.Fatalf("P999 = %v, want >= 1ms (population has 1/6 at 4ms)", final.P999)
	}
	t.Logf("final: %v", final)
}

// TestTenantBankLatencyMergeRace runs the same torn-merge stress against
// the TenantBank, whose merge additionally races lazy tenant allocation
// against the snapshot loop.
func TestTenantBankLatencyMergeRace(t *testing.T) {
	const (
		tenants = 6
		perTen  = 4000
	)
	bank := NewTenantBank()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for id := uint64(1); id <= tenants; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < perTen; i++ {
				// Allocate lazily inside the loop on purpose: the merge
				// must tolerate the meter map growing mid-snapshot.
				bank.Meter(id).RecordLatency(time.Duration(id) * time.Microsecond)
				bank.Meter(id).Frame(1)
			}
		}(id)
	}

	var mergerWG sync.WaitGroup
	mergerWG.Add(1)
	go func() {
		defer mergerWG.Done()
		prev := uint64(0)
		for !stop.Load() {
			s := bank.LatencyPercentiles()
			if s.Count < prev {
				t.Errorf("tenant merge count went backwards: %d -> %d", prev, s.Count)
				return
			}
			prev = s.Count
			if s.Count > 0 && (s.P50 > s.P99 || s.P99 > s.P999) {
				t.Errorf("tenant merge non-monotone: %v", s)
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	mergerWG.Wait()

	if got, want := bank.LatencyPercentiles().Count, uint64(tenants*perTen); got != want {
		t.Fatalf("final tenant merged count = %d, want %d", got, want)
	}
	if got, want := bank.Snapshot().Frames, uint64(tenants*perTen); got != want {
		t.Fatalf("aggregated frames = %d, want %d", got, want)
	}
	if got := bank.Len(); got != tenants {
		t.Fatalf("bank.Len() = %d, want %d", got, tenants)
	}
	// Per-tenant tails stay tenant-local: tenant 1 recorded only 1µs
	// samples, tenant 6 only 6µs — the merge must not bleed across.
	t1 := bank.TenantLatency(1)
	t6 := bank.TenantLatency(tenants)
	if t1.P999 >= t6.P50 {
		t.Fatalf("per-tenant histograms bled: tenant1 %v vs tenant6 %v", t1, t6)
	}
}
