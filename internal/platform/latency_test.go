package platform

import (
	"testing"
	"time"
)

// TestLatIndexValueRoundTrip pins the log-linear bucket geometry: every
// index maps into range, latValue returns the bucket's lower bound, and
// the relative quantization error is bounded by one sub-bucket step
// (2^-latSubBits = 6.25%).
func TestLatIndexValueRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 15, 16, 17, 100, 999, 1 << 20, 1<<40 + 12345, 1 << 62, ^uint64(0)}
	for v := uint64(1); v != 0 && v < 1<<63; v *= 3 {
		vals = append(vals, v, v+1, v-1)
	}
	for _, v := range vals {
		idx := latIndex(v)
		if idx < 0 || idx >= latBuckets {
			t.Fatalf("latIndex(%d) = %d out of [0,%d)", v, idx, latBuckets)
		}
		lo := latValue(idx)
		if lo > v {
			t.Fatalf("latValue(latIndex(%d)) = %d > input", v, lo)
		}
		if v >= latSub && float64(v-lo) > float64(v)/float64(latSub) {
			t.Fatalf("latIndex(%d): bucket floor %d loses more than 1/%d relative precision", v, lo, latSub)
		}
	}
	// Monotone: bucket floors never decrease with the index.
	prev := uint64(0)
	for i := 0; i < latBuckets; i++ {
		if v := latValue(i); v < prev {
			t.Fatalf("latValue(%d) = %d < latValue(%d) = %d", i, v, i-1, prev)
		} else {
			prev = v
		}
	}
	// The top representable value must index the last bucket, not panic.
	if idx := latIndex(^uint64(0)); idx != latBuckets-1 {
		t.Fatalf("latIndex(max) = %d, want %d", idx, latBuckets-1)
	}
}

// TestLatencyPercentiles records a known uniform distribution and checks
// the nearest-rank summary within the histogram's quantization error.
func TestLatencyPercentiles(t *testing.T) {
	var m Meter
	const n = 1000
	for i := 1; i <= n; i++ {
		m.RecordLatency(time.Duration(i) * time.Microsecond)
	}
	s := m.LatencyPercentiles()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d", s.Count, n)
	}
	within := func(name string, got time.Duration, want time.Duration) {
		t.Helper()
		// Bucket floors under-report by at most 1/latSub of the value.
		lo := want - want/latSub
		if got < lo || got > want {
			t.Fatalf("%s = %v, want within [%v, %v]", name, got, lo, want)
		}
	}
	within("p50", s.P50, 500*time.Microsecond)
	within("p99", s.P99, 990*time.Microsecond)
	within("p999", s.P999, 999*time.Microsecond)

	// Negative durations clamp to the zero bucket instead of corrupting
	// the histogram; nil meters are no-ops everywhere.
	m.RecordLatency(-time.Second)
	if got := m.LatencyPercentiles().Count; got != n+1 {
		t.Fatalf("Count after negative record = %d, want %d", got, n+1)
	}
	var nilM *Meter
	nilM.RecordLatency(time.Second)
	if s := nilM.LatencyPercentiles(); s.Count != 0 {
		t.Fatalf("nil meter recorded %d samples", s.Count)
	}
}

// TestLatencyMerge: a MeterBank summary merges per-queue histograms
// bucket-wise — the device-level percentile sees every queue's samples.
func TestLatencyMerge(t *testing.T) {
	b := NewMeterBank(2)
	for i := 1; i <= 500; i++ {
		b.Queue(0).RecordLatency(time.Duration(i) * time.Microsecond)
		b.Queue(1).RecordLatency(time.Duration(i+500) * time.Microsecond)
	}
	s := b.LatencyPercentiles()
	if s.Count != 1000 {
		t.Fatalf("merged Count = %d, want 1000", s.Count)
	}
	want := 500 * time.Microsecond
	if s.P50 < want-want/latSub || s.P50 > want {
		t.Fatalf("merged p50 = %v, want ~%v", s.P50, want)
	}
	// Queue-local tails stay visible: queue 1's p50 sits around 750µs.
	q1 := b.Queue(1).LatencyPercentiles()
	if q1.P50 <= s.P50 {
		t.Fatalf("queue-1 p50 %v not above merged p50 %v", q1.P50, s.P50)
	}
	var nilB *MeterBank
	if s := nilB.LatencyPercentiles(); s.Count != 0 {
		t.Fatalf("nil bank recorded %d samples", s.Count)
	}
}
