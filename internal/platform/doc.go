// Package platform simulates the confidential-computing platform that the
// paper's designs run on: the trust domains of Figure 1 (confidential
// workload, untrusted host software, host hardware), the boundary
// crossings between them, and revocable shared-memory windows.
//
// Since no TEE hardware is available to this reproduction, the platform
// makes all the quantities the paper reasons about *explicit and
// countable* instead of implicit in hardware:
//
//   - Meter counts every boundary event on the I/O path — TEE world
//     switches, intra-TEE compartment gate crossings, bytes copied across
//     the boundary, validation checks, notifications, crypto bytes, and
//     page share/revoke operations.
//
//   - CostParams assigns a nanosecond weight to each event class,
//     calibrated against publicly reported magnitudes (SGX ocall ≈ µs,
//     MPK-style gate ≈ 100 ns, memcpy ≈ tens of GB/s, EPT/TLB page
//     revocation ≈ µs). Costs.ModelNanos turns a counter snapshot into a
//     modelled time, so experiments report both real wall-clock time of
//     the simulation and modelled time of the modelled hardware.
//
//   - Window is a page-granular shared-memory window whose pages the
//     guest can *revoke* (un-share) from the host on the fly — the
//     mechanism §3.2 proposes for eliminating receive copies. Host access
//     to a revoked page is a fault, which the attack harness uses to
//     verify revocation actually closes the double-fetch window.
package platform
