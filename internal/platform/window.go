package platform

import (
	"errors"
	"fmt"
	"sync"

	"confio/internal/shmem"
)

// PageSize is the granularity at which windows can be shared and revoked,
// matching the 4 KiB granularity of the page-table/RMP mechanisms the
// paper's revocation idea relies on.
const PageSize = 4096

// ErrRevoked is the fault a host-side access takes when it touches a page
// the guest has un-shared. In real hardware this would be an RMP/EPT
// violation; the simulation surfaces it as an error the device model must
// handle (an honest host never sees it; a malicious one proves the
// mechanism works).
var ErrRevoked = errors.New("platform: page revoked from host")

// Window is a page-granular shared-memory window between the guest TEE
// and the host. The guest side always has access; the host side only to
// pages currently shared. Revocation is the paper's §3.2 alternative to
// receive-side copies: the guest un-shares the page under a received
// buffer instead of copying it out, closing the double-fetch window.
type Window struct {
	region *shmem.Region
	meter  *Meter
	pages  int

	mu     sync.RWMutex
	shared []bool
}

// NewWindow builds a window of size bytes (power of two, multiple of
// PageSize) with every page initially shared. The meter may be nil.
func NewWindow(size int, meter *Meter) (*Window, error) {
	if size < PageSize || size%PageSize != 0 {
		return nil, fmt.Errorf("platform: window size %d not a multiple of page size %d", size, PageSize)
	}
	r, err := shmem.NewRegion(size)
	if err != nil {
		return nil, err
	}
	w := &Window{region: r, meter: meter, pages: size / PageSize}
	w.shared = make([]bool, w.pages)
	for i := range w.shared {
		w.shared[i] = true
	}
	meter.Share(w.pages)
	return w, nil
}

// Region returns the backing region. Guest-side code uses it directly:
// the guest always has access to its own memory.
func (w *Window) Region() *shmem.Region { return w.region }

// Pages returns the number of pages in the window.
func (w *Window) Pages() int { return w.pages }

// pageOf masks the offset and returns the containing page index.
func (w *Window) pageOf(off uint64) int {
	return int((off & w.region.Mask()) / PageSize)
}

// Revoke un-shares the pages covering [off, off+n) from the host. It is
// idempotent; the meter counts only pages whose state actually changed.
func (w *Window) Revoke(off uint64, n int) {
	w.setShared(off, n, false)
}

// Reshare makes the pages covering [off, off+n) host-visible again.
func (w *Window) Reshare(off uint64, n int) {
	w.setShared(off, n, true)
}

func (w *Window) setShared(off uint64, n int, val bool) {
	if n <= 0 {
		return
	}
	first := w.pageOf(off)
	last := w.pageOf(off + uint64(n) - 1)
	changed := 0
	w.mu.Lock()
	for p := first; ; p = (p + 1) % w.pages {
		if w.shared[p] != val {
			w.shared[p] = val
			changed++
		}
		if p == last {
			break
		}
	}
	w.mu.Unlock()
	if val {
		w.meter.Share(changed)
	} else {
		w.meter.Revoke(changed)
	}
}

// SharedPages returns how many pages are currently shared with the host.
func (w *Window) SharedPages() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := 0
	for _, s := range w.shared {
		if s {
			n++
		}
	}
	return n
}

// hostCheck verifies that every page covering [off, off+n) is shared.
func (w *Window) hostCheck(off uint64, n int) error {
	if n <= 0 {
		n = 1
	}
	first := w.pageOf(off)
	last := w.pageOf(off + uint64(n) - 1)
	w.mu.RLock()
	defer w.mu.RUnlock()
	for p := first; ; p = (p + 1) % w.pages {
		if !w.shared[p] {
			return fmt.Errorf("%w: page %d", ErrRevoked, p)
		}
		if p == last {
			break
		}
	}
	return nil
}

// HostView returns the host's faulting view of the window.
func (w *Window) HostView() *HostView { return &HostView{w: w} }

// HostView accesses a window subject to per-page sharing state. Every
// accessor returns ErrRevoked when it touches an un-shared page.
type HostView struct {
	w *Window
}

// ReadAt copies out len(dst) bytes at the masked offset if all covered
// pages are shared.
func (h *HostView) ReadAt(dst []byte, off uint64) error {
	if err := h.w.hostCheck(off, len(dst)); err != nil {
		return err
	}
	h.w.region.ReadAt(dst, off)
	return nil
}

// WriteAt copies src in at the masked offset if all covered pages are
// shared.
func (h *HostView) WriteAt(src []byte, off uint64) error {
	if err := h.w.hostCheck(off, len(src)); err != nil {
		return err
	}
	h.w.region.WriteAt(src, off)
	return nil
}

// U32 loads a uint32, faulting on revoked pages.
func (h *HostView) U32(off uint64) (uint32, error) {
	if err := h.w.hostCheck(off, 4); err != nil {
		return 0, err
	}
	return h.w.region.U32(off), nil
}

// SetU32 stores a uint32, faulting on revoked pages.
func (h *HostView) SetU32(off uint64, v uint32) error {
	if err := h.w.hostCheck(off, 4); err != nil {
		return err
	}
	h.w.region.SetU32(off, v)
	return nil
}

// U64 loads a uint64, faulting on revoked pages.
func (h *HostView) U64(off uint64) (uint64, error) {
	if err := h.w.hostCheck(off, 8); err != nil {
		return 0, err
	}
	return h.w.region.U64(off), nil
}

// SetU64 stores a uint64, faulting on revoked pages.
func (h *HostView) SetU64(off uint64, v uint64) error {
	if err := h.w.hostCheck(off, 8); err != nil {
		return err
	}
	h.w.region.SetU64(off, v)
	return nil
}
