package virtio

import (
	"errors"
	"fmt"
	"sync"

	"confio/internal/platform"
)

// ErrFull means no transmit descriptor is free.
var ErrFull = errors.New("virtio: no free descriptors")

// ErrEmpty means no received frame is pending.
var ErrEmpty = errors.New("virtio: no used buffers")

// ErrNeedsReset is a fatal device-state inconsistency detected by a
// hardened driver (the virtio analogue of giving up on the device).
var ErrNeedsReset = errors.New("virtio: device needs reset")

// ErrNegotiation reports a failed feature/status handshake.
var ErrNegotiation = errors.New("virtio: negotiation failed")

// Stats records how the driver's trust decisions played out. Blocked
// counts device-supplied values rejected by retrofitted checks;
// TrustedUnchecked counts values that *failed* a (shadow) check but were
// trusted anyway because the corresponding hardening is disabled — the
// simulation's accounting of "this is where the unhardened driver is
// exploited".
type Stats struct {
	Blocked          uint64
	TrustedUnchecked uint64
	Kicks            uint64
	Frames           uint64
}

// Driver is the guest-side virtio-net driver.
type Driver struct {
	cfg   Config
	meter *platform.Meter
	ctrl  *Control
	tx    *Queue
	rx    *Queue

	mu   sync.Mutex
	dead error

	// negotiated state
	features uint64
	// plannedFeatures is what the driver validated before the (possibly
	// re-fetched) store; divergence is the feature TOCTOU.
	plannedFeatures uint64

	// TX private state
	txAvail       uint64
	txLastUsed    uint64
	txFree        []uint16
	txOutstanding []bool
	txLens        []uint32

	// RX private state
	rxAvail       uint64
	rxLastUsed    uint64
	rxOutstanding []bool
	txWasEmpty    bool

	stats Stats
	pool  sync.Pool
}

// NewPair constructs a connected driver and honest device, running the
// full status/feature negotiation. The attack harness builds malicious
// pairs by constructing the pieces itself.
func NewPair(cfg Config, meter *platform.Meter) (*Driver, *Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tx, err := NewQueue(cfg.QueueSize, cfg.BufSize)
	if err != nil {
		return nil, nil, err
	}
	rx, err := NewQueue(cfg.QueueSize, cfg.BufSize)
	if err != nil {
		return nil, nil, err
	}
	ctrl := NewControl(knownFeatures)
	dev := NewDevice(cfg, ctrl, tx, rx, meter)
	drv, err := NewDriver(cfg, ctrl, tx, rx, meter)
	if err != nil {
		return nil, nil, err
	}
	return drv, dev, nil
}

// NewDriver initializes the driver over existing queues and control
// plane, performing negotiation. Exported separately so adversarial
// control planes and devices can be substituted.
func NewDriver(cfg Config, ctrl *Control, tx, rx *Queue, meter *platform.Meter) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Driver{cfg: cfg, meter: meter, ctrl: ctrl, tx: tx, rx: rx, txWasEmpty: true}
	d.txFree = make([]uint16, cfg.QueueSize)
	for i := range d.txFree {
		d.txFree[i] = uint16(cfg.QueueSize - 1 - i)
	}
	d.txOutstanding = make([]bool, cfg.QueueSize)
	d.txLens = make([]uint32, cfg.QueueSize)
	d.rxOutstanding = make([]bool, cfg.QueueSize)
	d.pool.New = func() any { return make([]byte, cfg.BufSize) }

	if err := d.negotiate(); err != nil {
		return nil, err
	}
	d.postAllRx()
	return d, nil
}

// negotiate runs the stateful virtio status FSM — exactly the control
// plane complexity the paper's safe ring eliminates.
func (d *Driver) negotiate() error {
	d.ctrl.WriteStatus(StatusAcknowledge | StatusDriver)

	offered := d.ctrl.ReadDeviceFeatures() // validation fetch
	want := d.cfg.WantFeatures & offered & knownFeatures
	if d.cfg.Hardening.RestrictFeatures {
		want &^= FeatIndirectDesc | FeatEventIdx
	}
	d.plannedFeatures = want

	if !d.cfg.Hardening.RaceProtect {
		// Legacy behaviour: the store path re-reads the (device-owned)
		// feature register. A device that flaps features between the
		// two fetches desynchronizes what was validated from what is
		// enabled — the control-path double fetch.
		offered2 := d.ctrl.ReadDeviceFeatures()
		want2 := d.cfg.WantFeatures & offered2 & knownFeatures
		if d.cfg.Hardening.RestrictFeatures {
			want2 &^= FeatIndirectDesc | FeatEventIdx
		}
		if want2 != want {
			d.stats.TrustedUnchecked++
		}
		want = want2
	}
	d.features = want

	d.ctrl.WriteDriverFeatures(want)
	d.ctrl.WriteStatus(StatusAcknowledge | StatusDriver | StatusFeaturesOK)
	st := d.ctrl.ReadStatus()
	if st&StatusFeaturesOK == 0 || st&(StatusNeedsReset|StatusFailed) != 0 {
		return fmt.Errorf("%w: device status %#x", ErrNegotiation, st)
	}
	d.ctrl.WriteStatus(st | StatusDriverOK)
	return nil
}

// Features returns the enabled feature set.
func (d *Driver) Features() uint64 { return d.features }

// PlannedFeatures returns the set the driver validated before enabling.
func (d *Driver) PlannedFeatures() uint64 { return d.plannedFeatures }

// Stats returns a snapshot of the trust accounting.
func (d *Driver) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Dead returns the fatal error, if the (hardened) driver gave up.
func (d *Driver) Dead() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

func (d *Driver) fail(err error) error {
	if d.dead == nil {
		d.dead = err
	}
	return d.dead
}

// postAllRx exposes every receive buffer to the device.
func (d *Driver) postAllRx() {
	for i := 0; i < d.cfg.QueueSize; i++ {
		d.postRxLocked(uint16(i))
	}
}

func (d *Driver) postRxLocked(id uint16) {
	if d.cfg.Hardening.MemInit {
		// Zero before exposure so stale guest data never leaks through a
		// short device write ("add initialization to memory").
		zero := make([]byte, d.cfg.BufSize)
		d.rx.Bufs().WriteAt(zero, d.rx.BufAddr(int(id)))
		d.meter.Copy(d.cfg.BufSize)
	}
	d.rx.WriteDesc(uint64(id), d.rx.BufAddr(int(id)), uint32(d.cfg.BufSize), DescFWrite, 0)
	d.rxOutstanding[id] = true
	d.rx.PublishAvail(d.rxAvail, id)
	d.rxAvail++
	d.kick()
}

// kick notifies the device (an MMIO write, i.e. a TEE exit in a CVM).
// With event-idx negotiated the device suppresses most kicks; the
// restricted-features retrofit loses that optimization — one of the
// paper's "performance tends to suffer from hardening" effects.
func (d *Driver) kick() {
	if d.features&FeatEventIdx != 0 && !d.txWasEmpty {
		return
	}
	d.stats.Kicks++
	d.meter.Notify(1)
	d.meter.CrossTEE(1)
}

// Send transmits one Ethernet frame.
func (d *Driver) Send(frame []byte) error {
	if len(frame) == 0 || len(frame) > d.cfg.BufSize {
		return fmt.Errorf("virtio: frame size %d out of range", len(frame))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead != nil {
		return d.dead
	}
	if err := d.reapTxLocked(); err != nil {
		return err
	}
	if len(d.txFree) == 0 {
		return ErrFull
	}
	id := d.txFree[len(d.txFree)-1]
	d.txFree = d.txFree[:len(d.txFree)-1]

	if d.cfg.Hardening.Copies {
		// SWIOTLB-style: stage through a bounce copy before the DMA
		// buffer — systematically, even though the guest owns the source
		// and a double fetch is impossible here ("add copies").
		staged := d.pool.Get().([]byte)
		copy(staged[:len(frame)], frame)
		d.meter.Copy(len(frame))
		d.tx.Bufs().WriteAt(staged[:len(frame)], d.tx.BufAddr(int(id)))
		d.pool.Put(staged)
	} else {
		d.tx.Bufs().WriteAt(frame, d.tx.BufAddr(int(id)))
	}
	d.meter.Copy(len(frame))

	d.tx.WriteDesc(uint64(id), d.tx.BufAddr(int(id)), uint32(len(frame)), 0, 0)
	d.txOutstanding[id] = true
	d.txLens[id] = uint32(len(frame))
	wasEmpty := d.txAvail == d.txLastUsed
	d.tx.PublishAvail(d.txAvail, id)
	d.txAvail++
	d.txWasEmpty = wasEmpty
	d.kick()
	d.txWasEmpty = false
	d.stats.Frames++
	return nil
}

// reapTxLocked processes transmit completions from the used ring.
func (d *Driver) reapTxLocked() error {
	used := d.tx.UsedIdx()
	d.meter.Check(1)
	pending := used - d.txLastUsed
	if pending > uint64(d.cfg.QueueSize) {
		if d.cfg.Hardening.Checks {
			d.stats.Blocked++
			return d.fail(fmt.Errorf("%w: used idx %d claims %d completions", ErrNeedsReset, used, pending))
		}
		// Unhardened: the driver would loop (size) times chasing the
		// bogus index; we cap the damage the same way its ring arithmetic
		// would, and record the unchecked trust.
		d.stats.TrustedUnchecked++
		pending = uint64(d.cfg.QueueSize)
	}
	for n := uint64(0); n < pending; n++ {
		id32, _ := d.tx.UsedEntry(d.txLastUsed + n)
		if d.cfg.Hardening.Checks {
			d.meter.Check(1)
			if id32 >= uint32(d.cfg.QueueSize) || !d.txOutstanding[id32] {
				d.stats.Blocked++
				continue
			}
		} else if id32 >= uint32(d.cfg.QueueSize) || !d.txOutstanding[id32&uint32(d.cfg.QueueSize-1)] {
			// Unhardened: a forged id corrupts the free list (the C
			// driver would free the wrong buffer); we reproduce the
			// corruption by freeing the masked id, possibly twice.
			d.stats.TrustedUnchecked++
		}
		id := uint16(id32 & uint32(d.cfg.QueueSize-1))
		d.txOutstanding[id] = false
		d.txFree = append(d.txFree, id)
	}
	d.txLastUsed += pending
	return nil
}

// RxFrame is one received frame. With the Copies retrofit the bytes are
// a private copy; without it they are (whenever possible) a zero-copy
// view into device-writable memory — the legacy behaviour whose double
// fetch the attack harness demonstrates.
type RxFrame struct {
	drv      *Driver
	data     []byte
	pooled   []byte
	id       uint16
	released bool
}

// Bytes returns the frame contents.
func (f *RxFrame) Bytes() []byte { return f.data }

// Release reposts the receive buffer to the device.
func (f *RxFrame) Release() {
	if f.released {
		return
	}
	f.released = true
	if f.pooled != nil {
		f.drv.pool.Put(f.pooled[:cap(f.pooled)])
		f.pooled = nil
	}
	f.drv.mu.Lock()
	f.drv.postRxLocked(f.id)
	f.drv.mu.Unlock()
	f.data = nil
}

// Recv returns the next received frame, ErrEmpty, or a fatal error.
func (d *Driver) Recv() (*RxFrame, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead != nil {
		return nil, d.dead
	}
	used := d.rx.UsedIdx()
	d.meter.Check(1)
	if used == d.rxLastUsed {
		return nil, ErrEmpty
	}
	if used-d.rxLastUsed > uint64(d.cfg.QueueSize) {
		if d.cfg.Hardening.Checks {
			d.stats.Blocked++
			return nil, d.fail(fmt.Errorf("%w: rx used idx %d", ErrNeedsReset, used))
		}
		d.stats.TrustedUnchecked++
	}

	id32, n32 := d.rx.UsedEntry(d.rxLastUsed)
	qmask := uint32(d.cfg.QueueSize - 1)

	if d.cfg.Hardening.Checks {
		d.meter.Check(2)
		if id32 >= uint32(d.cfg.QueueSize) || !d.rxOutstanding[id32] {
			d.stats.Blocked++
			d.rxLastUsed++
			return nil, ErrEmpty
		}
	} else if id32 >= uint32(d.cfg.QueueSize) || !d.rxOutstanding[id32&qmask] {
		d.stats.TrustedUnchecked++
	}
	id := uint16(id32 & qmask)

	// Bound the length. The hardened driver bounds by its private record
	// of the buffer it posted; the legacy driver re-reads desc.len from
	// the device-writable descriptor table (double fetch) or, with
	// Checks off entirely, trusts used.len outright — which lets an
	// out-of-range length read past the posted buffer into its
	// neighbours (reproduced here byte-for-byte via the masked region).
	var bound uint32
	switch {
	case d.cfg.Hardening.Checks:
		bound = uint32(d.cfg.BufSize)
		if n32 > bound {
			d.stats.Blocked++
			d.rxLastUsed++
			return nil, ErrEmpty
		}
		bound = n32
	case d.cfg.Hardening.RaceProtect:
		_, dlen, _, _ := d.rx.ReadDesc(uint64(id)) // single snapshot
		bound = minU32(n32, dlen)
	default:
		// Unbounded trust, capped only by total buffer memory so the
		// simulation terminates; anything past BufSize is a leak.
		bound = minU32(n32, uint32(d.rx.Bufs().Size()))
		if n32 > uint32(d.cfg.BufSize) {
			d.stats.TrustedUnchecked++
		}
	}
	if bound == 0 {
		d.rxLastUsed++
		return nil, ErrEmpty
	}

	d.rxOutstanding[id] = false
	addr := d.rx.BufAddr(int(id))
	d.rxLastUsed++
	d.stats.Frames++

	if d.cfg.Hardening.Copies {
		buf := d.pool.Get().([]byte)
		if int(bound) > cap(buf) {
			buf = make([]byte, bound)
		}
		d.rx.Bufs().ReadAt(buf[:bound], addr)
		d.meter.Copy(int(bound))
		return &RxFrame{drv: d, data: buf[:bound], pooled: buf, id: id}, nil
	}
	// Legacy zero-copy view into shared memory. (Falls back to a copy
	// only when the read would wrap the region end.)
	if addr+uint64(bound) <= uint64(d.rx.Bufs().Size()) {
		//ciovet:allow sharedescape deliberate legacy baseline: un-hardened virtio zero-copy view, gated off by Hardening.Copies
		return &RxFrame{drv: d, data: d.rx.Bufs().Slice(addr, int(bound)), id: id}, nil
	}
	buf := make([]byte, bound)
	d.rx.Bufs().ReadAt(buf, addr)
	return &RxFrame{drv: d, data: buf, id: id}, nil
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
