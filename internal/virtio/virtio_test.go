package virtio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func mkFrame(n int, seed byte) []byte {
	f := make([]byte, n)
	for i := range f {
		f[i] = seed + byte(i)
	}
	return f
}

func pair(t *testing.T, h Hardening) (*Driver, *Device) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hardening = h
	d, dv, err := NewPair(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, dv
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MTU: 10, QueueSize: 256, BufSize: 2048},
		{MTU: 1500, QueueSize: 100, BufSize: 2048},
		{MTU: 1500, QueueSize: 256, BufSize: 1024},
		{MTU: 20000, QueueSize: 256, BufSize: 2048},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestHardeningString(t *testing.T) {
	s := FullHardening().String()
	if !strings.Contains(s, "checks+") || !strings.Contains(s, "copies+") {
		t.Fatalf("String = %q", s)
	}
	if !strings.Contains(NoHardening().String(), "checks-") {
		t.Fatal("NoHardening string wrong")
	}
}

func TestNegotiationHappyPath(t *testing.T) {
	d, dv := pair(t, NoHardening())
	if d.Features()&FeatMrgRxBuf == 0 {
		t.Fatal("wanted feature not negotiated")
	}
	if dv.Control().ReadStatus()&StatusDriverOK == 0 {
		t.Fatal("driver never reached DRIVER_OK")
	}
	if d.Features() != d.PlannedFeatures() {
		t.Fatal("happy path diverged")
	}
}

func TestRestrictFeaturesStripsRiskyBits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WantFeatures |= FeatIndirectDesc | FeatEventIdx
	cfg.Hardening = Hardening{RestrictFeatures: true, RaceProtect: true}
	d, _, err := NewPair(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Features()&(FeatIndirectDesc|FeatEventIdx) != 0 {
		t.Fatalf("risky features negotiated despite restriction: %#x", d.Features())
	}
	// Without restriction they negotiate.
	cfg.Hardening = Hardening{RaceProtect: true}
	d2, _, err := NewPair(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Features()&FeatEventIdx == 0 {
		t.Fatal("event idx should negotiate when unrestricted")
	}
}

func TestFeatureTOCTOU(t *testing.T) {
	// A device that offers checksum offload on the validation fetch and
	// withdraws it on the store fetch desynchronizes the legacy driver.
	mkCtrl := func() *Control {
		c := NewControl(knownFeatures)
		c.FeatureHook = func(fetch int, base uint64) uint64 {
			if fetch == 1 {
				return base
			}
			return base &^ FeatChecksumOffload
		}
		return c
	}
	cfg := DefaultConfig()
	cfg.WantFeatures = FeatChecksumOffload

	tx, _ := NewQueue(cfg.QueueSize, cfg.BufSize)
	rx, _ := NewQueue(cfg.QueueSize, cfg.BufSize)
	d, err := NewDriver(cfg, mkCtrl(), tx, rx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Features() == d.PlannedFeatures() {
		t.Fatal("legacy driver should have diverged (validated offload, stored none)")
	}
	if d.Stats().TrustedUnchecked == 0 {
		t.Fatal("divergence not accounted")
	}

	// The race-protect retrofit fetches once: no divergence possible.
	cfg.Hardening.RaceProtect = true
	tx2, _ := NewQueue(cfg.QueueSize, cfg.BufSize)
	rx2, _ := NewQueue(cfg.QueueSize, cfg.BufSize)
	ctrl := mkCtrl()
	d2, err := NewDriver(cfg, ctrl, tx2, rx2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Features() != d2.PlannedFeatures() {
		t.Fatal("hardened driver diverged")
	}
	if ctrl.Fetches() != 1 {
		t.Fatalf("hardened driver fetched features %d times", ctrl.Fetches())
	}
}

func TestNegotiationRejectedByDevice(t *testing.T) {
	cfg := DefaultConfig()
	ctrl := NewControl(0) // offers nothing; driver wants MrgRxBuf -> gets none, fine
	// Force a failure: device pre-asserts FAILED.
	ctrl.ForceStatus(StatusFailed)
	// WriteStatus overwrites status, so model rejection via feature
	// mismatch instead: driver accepts a bit the device never offered.
	ctrl2 := NewControl(0)
	ctrl2.FeatureHook = func(fetch int, base uint64) uint64 { return FeatMrgRxBuf } // lies about offer
	tx, _ := NewQueue(cfg.QueueSize, cfg.BufSize)
	rx, _ := NewQueue(cfg.QueueSize, cfg.BufSize)
	if _, err := NewDriver(cfg, ctrl2, tx, rx, nil); !errors.Is(err, ErrNegotiation) {
		t.Fatalf("want ErrNegotiation, got %v", err)
	}
}

func TestTxRoundTripWithWrap(t *testing.T) {
	for _, h := range []Hardening{NoHardening(), FullHardening()} {
		d, dv := pair(t, h)
		buf := make([]byte, d.cfg.BufSize)
		for i := 0; i < 3*d.cfg.QueueSize; i++ {
			f := mkFrame(64+i%1400, byte(i))
			if err := d.Send(f); err != nil {
				t.Fatalf("%v send %d: %v", h, i, err)
			}
			n, err := dv.Pop(buf)
			if err != nil {
				t.Fatalf("%v pop %d: %v", h, i, err)
			}
			if !bytes.Equal(buf[:n], f) {
				t.Fatalf("%v frame %d corrupted", h, i)
			}
		}
		if _, err := dv.Pop(buf); !errors.Is(err, ErrEmpty) {
			t.Fatalf("empty pop: %v", err)
		}
	}
}

func TestRxRoundTripWithWrap(t *testing.T) {
	for _, h := range []Hardening{NoHardening(), FullHardening()} {
		d, dv := pair(t, h)
		for i := 0; i < 3*d.cfg.QueueSize; i++ {
			f := mkFrame(64+i%1400, byte(i))
			if err := dv.Push(f); err != nil {
				t.Fatalf("%v push %d: %v", h, i, err)
			}
			rx, err := d.Recv()
			if err != nil {
				t.Fatalf("%v recv %d: %v", h, i, err)
			}
			if !bytes.Equal(rx.Bytes(), f) {
				t.Fatalf("%v frame %d corrupted", h, i)
			}
			rx.Release()
			rx.Release() // idempotent
		}
		if _, err := d.Recv(); !errors.Is(err, ErrEmpty) {
			t.Fatalf("empty recv: %v", err)
		}
	}
}

func TestTxFullWhenDeviceStalls(t *testing.T) {
	d, _ := pair(t, NoHardening())
	for i := 0; i < d.cfg.QueueSize; i++ {
		if err := d.Send(mkFrame(64, 1)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := d.Send(mkFrame(64, 1)); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestRxFullWhenGuestStalls(t *testing.T) {
	d, dv := pair(t, NoHardening())
	for i := 0; i < d.cfg.QueueSize; i++ {
		if err := dv.Push(mkFrame(64, 1)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := dv.Push(mkFrame(64, 1)); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestSendRejectsBadSizes(t *testing.T) {
	d, _ := pair(t, NoHardening())
	if err := d.Send(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := d.Send(make([]byte, d.cfg.BufSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestDeviceTruncatesToPostedBuffer(t *testing.T) {
	d, dv := pair(t, FullHardening())
	big := mkFrame(d.cfg.BufSize, 5)
	if err := dv.Push(big); err != nil {
		t.Fatal(err)
	}
	rx, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(rx.Bytes()) != d.cfg.BufSize {
		t.Fatalf("len = %d", len(rx.Bytes()))
	}
	rx.Release()
}
