package virtio

import (
	"sync/atomic"

	"confio/internal/shmem"
)

// Split-virtqueue wire format, as in the virtio 1.x specification:
//
//	struct virtq_desc  { le64 addr; le32 len; le16 flags; le16 next; }
//	struct virtq_avail { le16 flags; le16 idx; le16 ring[N]; }
//	struct virtq_used  { le16 flags; le16 idx; struct { le32 id; le32 len; } ring[N]; }
//
// Every structure lives in device-visible shared memory, so either side
// can rewrite any field at any time — the property that makes hardening
// the consumer so delicate.

// Descriptor flag bits.
const (
	DescFNext     uint16 = 1
	DescFWrite    uint16 = 2
	DescFIndirect uint16 = 4
)

const descBytes = 16

// Queue is one split virtqueue plus the buffer memory its descriptors
// point into. Idx fields are modelled as atomics (same publish/observe
// semantics as shared cache lines); everything else is raw shared bytes.
type Queue struct {
	size uint64

	desc  *shmem.Region // size * 16
	avail *shmem.Region // 2-byte entries
	used  *shmem.Region // 8-byte entries
	bufs  *shmem.Region // size * bufSize

	bufSize uint64

	//ciovet:shared driver-published avail index, device reads it concurrently
	availIdx atomic.Uint64
	//ciovet:shared device-published used index, driver reads it concurrently
	usedIdx atomic.Uint64
}

// NewQueue allocates a virtqueue of the given size with per-slot buffers.
func NewQueue(size, bufSize int) (*Queue, error) {
	q := &Queue{size: uint64(size), bufSize: uint64(bufSize)}
	var err error
	if q.desc, err = shmem.NewRegion(size * descBytes); err != nil {
		return nil, err
	}
	// avail ring entries are 2 bytes; used entries 8 bytes.
	if q.avail, err = shmem.NewRegion(maxInt(size*2, shmem.MinRegionSize)); err != nil {
		return nil, err
	}
	if q.used, err = shmem.NewRegion(size * 8); err != nil {
		return nil, err
	}
	if q.bufs, err = shmem.NewRegion(size * bufSize); err != nil {
		return nil, err
	}
	return q, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Size returns the queue size.
func (q *Queue) Size() int { return int(q.size) }

// BufSize returns the per-slot buffer size.
func (q *Queue) BufSize() int { return int(q.bufSize) }

// Bufs exposes the buffer memory (device-writable).
func (q *Queue) Bufs() *shmem.Region { return q.bufs }

// BufAddr returns the buffer region offset for slot i (the value the
// driver puts in desc.addr).
func (q *Queue) BufAddr(i int) uint64 { return uint64(i) * q.bufSize }

// Desc accessors. The raw regions are exported so the attack harness can
// forge arbitrary state, exactly like a malicious hypervisor.

// DescRegion exposes the descriptor table memory.
func (q *Queue) DescRegion() *shmem.Region { return q.desc }

// ReadDesc loads descriptor i (masked).
func (q *Queue) ReadDesc(i uint64) (addr uint64, length uint32, flags, next uint16) {
	off := (i & (q.size - 1)) * descBytes
	return q.desc.U64(off), q.desc.U32(off + 8), q.desc.U16(off + 12), q.desc.U16(off + 14)
}

// WriteDesc stores descriptor i (masked).
func (q *Queue) WriteDesc(i uint64, addr uint64, length uint32, flags, next uint16) {
	off := (i & (q.size - 1)) * descBytes
	q.desc.SetU64(off, addr)
	q.desc.SetU32(off+8, length)
	q.desc.SetU16(off+12, flags)
	q.desc.SetU16(off+14, next)
}

// AvailIdx returns the driver-published available index.
func (q *Queue) AvailIdx() uint64 { return q.availIdx.Load() }

// PublishAvail appends slot id at position idx and publishes idx+1.
func (q *Queue) PublishAvail(idx uint64, id uint16) {
	q.avail.SetU16((idx&(q.size-1))*2, id)
	q.availIdx.Store(idx + 1)
}

// AvailEntry reads the avail ring entry at position idx (masked).
func (q *Queue) AvailEntry(idx uint64) uint16 {
	return q.avail.U16((idx & (q.size - 1)) * 2)
}

// UsedIdx returns the device-published used index.
func (q *Queue) UsedIdx() uint64 { return q.usedIdx.Load() }

// PublishUsed appends a used element {id, len} at position idx and
// publishes idx+1.
func (q *Queue) PublishUsed(idx uint64, id, length uint32) {
	off := (idx & (q.size - 1)) * 8
	q.used.SetU32(off, id)
	q.used.SetU32(off+4, length)
	q.usedIdx.Store(idx + 1)
}

// UsedEntry reads the used element at position idx (masked).
func (q *Queue) UsedEntry(idx uint64) (id, length uint32) {
	off := (idx & (q.size - 1)) * 8
	return q.used.U32(off), q.used.U32(off + 4)
}

// ForgeUsedIdx lets a malicious device publish an arbitrary used index
// without writing entries.
func (q *Queue) ForgeUsedIdx(v uint64) { q.usedIdx.Store(v) }

// ForgeAvailIdx lets a malicious driver-side entity publish an arbitrary
// avail index.
func (q *Queue) ForgeAvailIdx(v uint64) { q.availIdx.Store(v) }
