package virtio

import (
	"bytes"
	"errors"
	"testing"
)

// These tests mount the interface attacks from the paper's citations
// (VIA, COIN, Lefeuvre et al.) against the driver with and without the
// Figure-4 retrofits, demonstrating both that the unhardened driver is
// exploitable and that each retrofit closes its class.

func TestUsedLenLieLeaksNeighbourWithoutChecks(t *testing.T) {
	d, dv := pair(t, NoHardening())
	// Plant a secret in the buffer adjacent to buffer of slot id0.
	secret := []byte("ADJACENT-TENANT-SECRET")
	_, rx := dv.Queues()

	if err := dv.Push(mkFrame(100, 1)); err != nil {
		t.Fatal(err)
	}
	// Identify which slot the device used (first avail entry).
	id, _ := rx.UsedEntry(0)
	neighbour := (id + 1) % uint32(d.cfg.QueueSize)
	rx.Bufs().WriteAt(secret, rx.BufAddr(int(neighbour)))

	// Malicious device: overwrite the used element's length so it spills
	// into the neighbour buffer.
	lie := uint32(d.cfg.BufSize + 64)
	rx.PublishUsed(0, id, lie)
	rx.ForgeUsedIdx(1)

	f, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Bytes()) != int(lie) {
		t.Fatalf("unhardened driver did not trust the lied length: got %d", len(f.Bytes()))
	}
	if !bytes.Contains(f.Bytes(), secret) {
		t.Fatal("expected neighbour leak in unhardened driver")
	}
	if d.Stats().TrustedUnchecked == 0 {
		t.Fatal("unchecked trust not accounted")
	}
}

func TestUsedLenLieBlockedByChecks(t *testing.T) {
	d, dv := pair(t, Hardening{Checks: true})
	if err := dv.Push(mkFrame(100, 1)); err != nil {
		t.Fatal(err)
	}
	_, rx := dv.Queues()
	id, _ := rx.UsedEntry(0)
	rx.PublishUsed(0, id, uint32(d.cfg.BufSize+64))
	rx.ForgeUsedIdx(1)

	if _, err := d.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("hardened driver delivered or died: %v", err)
	}
	if d.Stats().Blocked == 0 {
		t.Fatal("block not accounted")
	}
}

func TestPayloadDoubleFetchWithoutCopies(t *testing.T) {
	// Legacy zero-copy receive: the frame is a view into device-writable
	// memory, so the device can rewrite it after the driver validated it.
	d, dv := pair(t, Hardening{Checks: true}) // checks on, copies off
	if err := dv.Push([]byte("GET /private HTTP/1.1")); err != nil {
		t.Fatal(err)
	}
	f, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	before := string(f.Bytes())
	// Device rewrites the buffer after delivery (TOCTOU).
	_, rx := dv.Queues()
	id, _ := rx.UsedEntry(0)
	rx.Bufs().WriteAt([]byte("GET /pwned!! HTTP/1.1"), rx.BufAddr(int(id)))
	after := string(f.Bytes())
	if before == after {
		t.Fatal("zero-copy view should observe the device rewrite (double fetch)")
	}

	// The copies retrofit closes the window.
	d2, dv2 := pair(t, Hardening{Checks: true, Copies: true})
	if err := dv2.Push([]byte("GET /private HTTP/1.1")); err != nil {
		t.Fatal(err)
	}
	f2, err := d2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	_, rx2 := dv2.Queues()
	id2, _ := rx2.UsedEntry(0)
	rx2.Bufs().WriteAt([]byte("GET /pwned!! HTTP/1.1"), rx2.BufAddr(int(id2)))
	if string(f2.Bytes()) != "GET /private HTTP/1.1" {
		t.Fatal("copied frame affected by device rewrite")
	}
}

func TestForgedUsedIdxOverclaim(t *testing.T) {
	// Hardened: fatal. Unhardened: trusted (capped), accounted.
	dh, _ := pair(t, Hardening{Checks: true})
	txq, _ := dhQueues(dh)
	txq.ForgeUsedIdx(uint64(dh.cfg.QueueSize) * 10)
	if err := dh.Send(mkFrame(64, 1)); !errors.Is(err, ErrNeedsReset) {
		t.Fatalf("hardened: want ErrNeedsReset, got %v", err)
	}
	if dh.Dead() == nil {
		t.Fatal("hardened driver not dead")
	}

	du, _ := pair(t, NoHardening())
	txu, _ := dhQueues(du)
	txu.ForgeUsedIdx(uint64(du.cfg.QueueSize) * 10)
	if err := du.Send(mkFrame(64, 1)); err != nil {
		t.Fatalf("unhardened send: %v", err)
	}
	if du.Stats().TrustedUnchecked == 0 {
		t.Fatal("overclaim trust not accounted")
	}
}

// dhQueues exposes a driver's queues for attack staging.
func dhQueues(d *Driver) (tx, rx *Queue) { return d.tx, d.rx }

func TestForgedUsedIdCorruptsFreeListWithoutChecks(t *testing.T) {
	d, dv := pair(t, NoHardening())
	buf := make([]byte, d.cfg.BufSize)

	// Two frames in flight.
	if err := d.Send(mkFrame(64, 0xA)); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(mkFrame(64, 0xB)); err != nil {
		t.Fatal(err)
	}
	tx, _ := dv.Queues()
	// Malicious device completes slot 0 twice (never slot 1).
	id0 := tx.AvailEntry(0)
	tx.PublishUsed(0, uint32(id0), 0)
	tx.PublishUsed(1, uint32(id0), 0)

	// The unhardened driver frees slot id0 twice: its free list now
	// hands the same buffer to two subsequent sends, cross-wiring them.
	fA := mkFrame(700, 0xC)
	fB := mkFrame(700, 0xD)
	if err := d.Send(fA); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(fB); err != nil {
		t.Fatal(err)
	}
	if d.Stats().TrustedUnchecked == 0 {
		t.Fatal("double free not accounted")
	}
	// The device pops the two new frames; with a corrupted free list
	// both descriptors name the same buffer, so the first transmitted
	// frame is overwritten by the second: fA is lost.
	var got [][]byte
	for {
		n, err := dv.Pop(buf)
		if err != nil {
			break
		}
		cp := make([]byte, n)
		copy(cp, buf[:n])
		got = append(got, cp)
	}
	foundA := false
	for _, g := range got {
		if bytes.Equal(g, fA) {
			foundA = true
		}
	}
	if foundA {
		t.Fatal("expected cross-wiring to destroy frame A in the unhardened driver")
	}
}

func TestForgedUsedIdBlockedByChecks(t *testing.T) {
	d, dv := pair(t, Hardening{Checks: true})
	if err := d.Send(mkFrame(64, 0xA)); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(mkFrame(64, 0xB)); err != nil {
		t.Fatal(err)
	}
	tx, _ := dv.Queues()
	id0 := tx.AvailEntry(0)
	tx.PublishUsed(0, uint32(id0), 0)
	tx.PublishUsed(1, uint32(id0), 0) // duplicate completion

	// Trigger reap.
	if err := d.Send(mkFrame(64, 0xC)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Blocked == 0 {
		t.Fatal("duplicate completion not blocked")
	}
	// No double free: the forged early completion may drop frame A (an
	// availability effect, out of the threat model), but frames B and C
	// must not be cross-wired onto one buffer.
	buf := make([]byte, d.cfg.BufSize)
	frames := map[byte]bool{}
	for {
		n, err := dv.Pop(buf)
		if err != nil {
			break
		}
		frames[buf[:n][0]] = true
	}
	if !frames[0xB] || !frames[0xC] {
		t.Fatalf("hardened driver cross-wired frames: %v", frames)
	}
}

func TestStaleMemoryLeakWithoutMemInit(t *testing.T) {
	// Without MemInit, a posted receive buffer still holds whatever the
	// guest last stored there — readable by the device before it writes.
	d, dv := pair(t, NoHardening())
	_, rx := dv.Queues()
	// Simulate prior sensitive guest data in buffer 3's memory.
	secret := []byte("stale-guest-secret")
	rx.Bufs().WriteAt(secret, rx.BufAddr(3))

	// Recycle buffer 3 through a receive: push frames until slot 3 used.
	var fr *RxFrame
	for i := 0; ; i++ {
		if err := dv.Push(mkFrame(8, byte(i))); err != nil {
			t.Fatal(err)
		}
		f, err := d.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.id == 3 {
			fr = f
			break
		}
		f.Release()
	}
	fr.Release() // reposts slot 3 without zeroing

	leak := make([]byte, len(secret))
	rx.Bufs().ReadAt(leak, rx.BufAddr(3)+8) // device peeks past the 8-byte frame
	if !bytes.Contains(append([]byte{0}, leak...), secret[8:]) {
		t.Log("note: short frame overwrote part of the secret; checking tail")
	}
	tail := make([]byte, len(secret)-8)
	rx.Bufs().ReadAt(tail, rx.BufAddr(3)+8)
	if !bytes.Equal(tail, secret[8:]) {
		t.Fatal("expected stale bytes visible to device without MemInit")
	}

	// With MemInit the reposted buffer is scrubbed.
	d2, dv2 := pair(t, Hardening{MemInit: true})
	_, rx2 := dv2.Queues()
	rx2.Bufs().WriteAt(secret, rx2.BufAddr(3))
	var fr2 *RxFrame
	for i := 0; ; i++ {
		if err := dv2.Push(mkFrame(8, byte(i))); err != nil {
			t.Fatal(err)
		}
		f, err := d2.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if f.id == 3 {
			fr2 = f
			break
		}
		f.Release()
	}
	fr2.Release()
	tail2 := make([]byte, len(secret)-8)
	rx2.Bufs().ReadAt(tail2, rx2.BufAddr(3)+8)
	if bytes.Equal(tail2, secret[8:]) {
		t.Fatal("MemInit did not scrub the reposted buffer")
	}
}

func TestEventIdxSuppresssKicks(t *testing.T) {
	// Event-idx pays off under batching: only the empty->nonempty
	// transition kicks. The restrict-features retrofit strips it and
	// kicks on every send.
	run := func(h Hardening) uint64 {
		cfg := DefaultConfig()
		cfg.WantFeatures |= FeatEventIdx
		cfg.Hardening = h
		d, dv, err := NewPair(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		base := d.Stats().Kicks // setup kicks (rx posts)
		buf := make([]byte, cfg.BufSize)
		for batch := 0; batch < 4; batch++ {
			for i := 0; i < 32; i++ {
				if err := d.Send(mkFrame(64, byte(i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 32; i++ {
				if _, err := dv.Pop(buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		return d.Stats().Kicks - base
	}
	withEvent := run(Hardening{})
	withoutEvent := run(Hardening{RestrictFeatures: true})
	if withoutEvent <= withEvent {
		t.Fatalf("restricting event idx should cost kicks: %d vs %d", withoutEvent, withEvent)
	}
	if withEvent != 4 {
		t.Fatalf("event idx should kick once per batch: %d", withEvent)
	}
}
