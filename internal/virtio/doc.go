// Package virtio is the lift-and-shift baseline: a from-scratch model of
// a virtio-net split-virtqueue driver/device pair, faithful to the parts
// of the standard that the paper's §2.5 study identifies as the sources
// of hardening pain:
//
//   - a stateful control plane (device status FSM + feature negotiation)
//     that is read from device-controlled state and can change under the
//     driver's feet,
//   - descriptor tables, avail and used rings in memory the device can
//     write at any time, indexed by device-supplied ids,
//   - legacy behaviours (e.g. the driver trusting used.len, zero-copy
//     receive views into shared buffers) kept for compatibility.
//
// The Hardening toggles map one-to-one onto the commit categories of
// Figure 4 (add checks, add memory initialization, add copies, protect
// against races, restrict features), so experiments can measure both the
// security effect (which attacks each retrofit blocks — attack harness)
// and the performance effect (what each retrofit costs — benchmarks),
// reproducing the paper's observation that retrofitted distrust is
// partial and expensive, compared to the safe-by-construction interface
// in package safering.
//
// When a hardening toggle is off, the driver behaves like the historical
// unhardened code: it trusts device-written values. Where that trust
// would be memory-unsafe in C, the simulation stays memory-safe (masked
// accesses) but *faithfully reproduces the security consequence* — e.g.
// an out-of-range used.len leaks bytes of neighbouring buffers, a forged
// used.id corrupts the free list and cross-wires frames. The driver
// records a Stats entry for each trusted-without-check value so
// experiments can attribute outcomes.
package virtio
