package virtio

import (
	"errors"
	"fmt"
)

// Feature bits offered by the device. A subset of the real virtio-net
// feature space, chosen to exercise the negotiation machinery.
const (
	// FeatIndirectDesc advertises indirect descriptor support.
	FeatIndirectDesc uint64 = 1 << 0
	// FeatEventIdx advertises used/avail event index suppression.
	FeatEventIdx uint64 = 1 << 1
	// FeatMrgRxBuf advertises mergeable receive buffers.
	FeatMrgRxBuf uint64 = 1 << 2
	// FeatLegacy marks pre-1.0 transitional behaviour.
	FeatLegacy uint64 = 1 << 3
	// FeatChecksumOffload lets the driver skip checksum work.
	FeatChecksumOffload uint64 = 1 << 4
)

// knownFeatures is what this driver implementation understands.
const knownFeatures = FeatIndirectDesc | FeatEventIdx | FeatMrgRxBuf | FeatLegacy | FeatChecksumOffload

// Device status register values (virtio 1.x status FSM).
const (
	StatusReset       uint8 = 0
	StatusAcknowledge uint8 = 1
	StatusDriver      uint8 = 2
	StatusDriverOK    uint8 = 4
	StatusFeaturesOK  uint8 = 8
	StatusNeedsReset  uint8 = 0x40
	StatusFailed      uint8 = 0x80
)

// Hardening toggles retrofitted mutual distrust onto the driver. Each
// field corresponds to a commit category from the paper's Figure 4 study
// of the Linux virtio hardening effort.
type Hardening struct {
	// Checks validates device-written indexes, ids and lengths
	// ("add checks": 35% of hardening commits).
	Checks bool
	// MemInit zeroes buffers before exposing them to the device
	// ("add initialization to memory": 28%).
	MemInit bool
	// Copies stages all payloads through a bounce step and copies them
	// out early with a validated length, SWIOTLB-style ("add copies").
	Copies bool
	// RaceProtect snapshots device-readable state once per operation
	// instead of re-reading it ("protect against races").
	RaceProtect bool
	// RestrictFeatures refuses feature bits with known hardening
	// problems (indirect descriptors, event idx) ("restrict features").
	RestrictFeatures bool
}

// NoHardening is the lift-and-shift configuration: the driver as written
// for a trusted hypervisor.
func NoHardening() Hardening { return Hardening{} }

// FullHardening enables every retrofit.
func FullHardening() Hardening {
	return Hardening{Checks: true, MemInit: true, Copies: true, RaceProtect: true, RestrictFeatures: true}
}

func (h Hardening) String() string {
	mark := func(b bool) byte {
		if b {
			return '+'
		}
		return '-'
	}
	return fmt.Sprintf("checks%c init%c copies%c race%c restrict%c",
		mark(h.Checks), mark(h.MemInit), mark(h.Copies), mark(h.RaceProtect), mark(h.RestrictFeatures))
}

// Config fixes the geometry of a driver/device pair.
type Config struct {
	MAC [6]byte
	MTU int
	// QueueSize is the virtqueue size (power of two).
	QueueSize int
	// BufSize is the per-buffer size (power of two, >= MTU+64).
	BufSize int
	// Hardening selects the retrofits.
	Hardening Hardening
	// WantFeatures is what the driver asks for from the offered set.
	WantFeatures uint64
}

// DefaultConfig mirrors the safe-ring default geometry so benchmark
// comparisons are apples-to-apples.
func DefaultConfig() Config {
	return Config{
		MAC:       [6]byte{0x02, 0x00, 0x00, 0xB1, 0x00, 0x01},
		MTU:       1500,
		QueueSize: 256,
		BufSize:   2048,
		// Event-idx is negotiated by default, as Linux does; the
		// restrict-features retrofit strips it (and pays the kicks).
		WantFeatures: FeatMrgRxBuf | FeatChecksumOffload | FeatEventIdx,
	}
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("virtio: invalid config")

// Validate checks the structural requirements.
func (c Config) Validate() error {
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	switch {
	case c.MTU < 64 || c.MTU > 9216:
		return fmt.Errorf("%w: MTU %d", ErrConfig, c.MTU)
	case !pow2(c.QueueSize) || c.QueueSize < 2 || c.QueueSize > 32768:
		return fmt.Errorf("%w: queue size %d", ErrConfig, c.QueueSize)
	case !pow2(c.BufSize) || c.BufSize < c.MTU+64:
		return fmt.Errorf("%w: buf size %d for MTU %d", ErrConfig, c.BufSize, c.MTU)
	}
	return nil
}
