package virtio

import "sync"

// Control models the virtio control plane: the device-owned feature and
// status registers the driver reads during its stateful initialization
// FSM. In a confidential VM these registers are host-controlled, which
// is precisely why the paper's safe interface has no control plane at
// all.
type Control struct {
	mu             sync.Mutex
	deviceFeatures uint64
	driverFeatures uint64
	status         uint8
	fetches        int

	// FeatureHook, when set, substitutes the value of each device
	// feature fetch (fetch counts from 1). The attack harness uses it to
	// flap features between the driver's validation and store fetches.
	FeatureHook func(fetch int, base uint64) uint64
}

// NewControl creates a control plane offering the given features.
func NewControl(features uint64) *Control {
	return &Control{deviceFeatures: features}
}

// ReadDeviceFeatures performs one driver fetch of the feature register.
func (c *Control) ReadDeviceFeatures() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fetches++
	if c.FeatureHook != nil {
		return c.FeatureHook(c.fetches, c.deviceFeatures)
	}
	return c.deviceFeatures
}

// Fetches returns how many times the driver read the feature register.
func (c *Control) Fetches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetches
}

// WriteDriverFeatures records the driver's accepted feature set.
func (c *Control) WriteDriverFeatures(v uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.driverFeatures = v
}

// DriverFeatures returns the driver-accepted set (device side).
func (c *Control) DriverFeatures() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.driverFeatures
}

// WriteStatus is the driver's status register write. When the driver
// asserts FEATURES_OK the device validates the accepted set and either
// confirms the bit or clears it (per spec).
func (c *Control) WriteStatus(v uint8) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v&StatusFeaturesOK != 0 && c.driverFeatures&^c.deviceFeatures != 0 {
		v &^= StatusFeaturesOK
	}
	c.status = v
}

// ReadStatus returns the current status register.
func (c *Control) ReadStatus() uint8 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// ForceStatus lets a malicious device set arbitrary status bits.
func (c *Control) ForceStatus(v uint8) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.status = v
}
