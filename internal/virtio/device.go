package virtio

import (
	"errors"
	"fmt"
	"sync"

	"confio/internal/nic"
	"confio/internal/platform"
)

// Device is the honest host-side virtio-net device model. A malicious
// host does not use this type: it manipulates the queues and control
// plane directly (see the attack harness).
type Device struct {
	cfg   Config
	ctrl  *Control
	tx    *Queue
	rx    *Queue
	meter *platform.Meter

	mu          sync.Mutex
	txLastAvail uint64
	txUsed      uint64
	rxLastAvail uint64
	rxUsed      uint64
	intCount    uint64
}

// NewDevice attaches an honest device model to the queues.
func NewDevice(cfg Config, ctrl *Control, tx, rx *Queue, meter *platform.Meter) *Device {
	return &Device{cfg: cfg, ctrl: ctrl, tx: tx, rx: rx, meter: meter}
}

// Queues exposes the TX and RX virtqueues (for tests and attacks).
func (dv *Device) Queues() (tx, rx *Queue) { return dv.tx, dv.rx }

// Control exposes the control plane.
func (dv *Device) Control() *Control { return dv.ctrl }

// Pop dequeues the next driver transmit frame into buf.
func (dv *Device) Pop(buf []byte) (int, error) {
	dv.mu.Lock()
	defer dv.mu.Unlock()
	avail := dv.tx.AvailIdx()
	if avail == dv.txLastAvail {
		return 0, ErrEmpty
	}
	id := dv.tx.AvailEntry(dv.txLastAvail)
	addr, dlen, _, _ := dv.tx.ReadDesc(uint64(id))
	if dlen == 0 || int(dlen) > dv.cfg.BufSize || int(dlen) > len(buf) {
		return 0, fmt.Errorf("virtio device: descriptor len %d out of range", dlen)
	}
	dv.tx.Bufs().ReadAt(buf[:dlen], addr)
	dv.tx.PublishUsed(dv.txUsed, uint32(id), 0)
	dv.txUsed++
	dv.txLastAvail++
	return int(dlen), nil
}

// Push delivers one frame into a driver-posted receive buffer.
func (dv *Device) Push(frame []byte) error {
	if len(frame) == 0 {
		return errors.New("virtio device: empty frame")
	}
	dv.mu.Lock()
	defer dv.mu.Unlock()
	avail := dv.rx.AvailIdx()
	if avail == dv.rxLastAvail {
		return ErrFull // no posted buffers
	}
	id := dv.rx.AvailEntry(dv.rxLastAvail)
	addr, dlen, flags, _ := dv.rx.ReadDesc(uint64(id))
	if flags&DescFWrite == 0 || dlen == 0 {
		return fmt.Errorf("virtio device: rx descriptor %d not writable", id)
	}
	n := len(frame)
	if uint32(n) > dlen {
		n = int(dlen) // honest device truncates to the posted buffer
	}
	dv.rx.Bufs().WriteAt(frame[:n], addr)
	dv.rx.PublishUsed(dv.rxUsed, uint32(id), uint32(n))
	dv.rxUsed++
	dv.rxLastAvail++
	dv.interrupt()
	return nil
}

// interrupt injects a receive interrupt into the guest — a TEE crossing.
// With event-idx negotiated the device suppresses most interrupts (a
// coarse 1-in-8 model of the real used_event protocol); the
// restrict-features retrofit therefore pays more exits.
func (dv *Device) interrupt() {
	dv.intCount++
	if dv.ctrl.DriverFeatures()&FeatEventIdx != 0 && dv.intCount%8 != 1 {
		return
	}
	dv.meter.Notify(1)
	dv.meter.CrossTEE(1)
}

// guestNIC adapts Driver to nic.Guest.
type guestNIC struct{ d *Driver }

// NIC returns the driver's nic.Guest view.
func (d *Driver) NIC() nic.Guest { return guestNIC{d} }

func (g guestNIC) Send(frame []byte) error {
	switch err := g.d.Send(frame); {
	case err == nil:
		return nil
	case errors.Is(err, ErrFull):
		return nic.ErrFull
	case errors.Is(err, ErrNeedsReset):
		return nic.ErrClosed
	default:
		return err
	}
}

func (g guestNIC) Recv() (nic.Frame, error) {
	f, err := g.d.Recv()
	switch {
	case err == nil:
		return f, nil
	case errors.Is(err, ErrEmpty):
		return nil, nic.ErrEmpty
	case errors.Is(err, ErrNeedsReset):
		return nil, nic.ErrClosed
	default:
		return nil, err
	}
}

func (g guestNIC) MAC() [6]byte { return g.d.cfg.MAC }
func (g guestNIC) MTU() int     { return g.d.cfg.MTU }

// hostNIC adapts Device to nic.Host.
type hostNIC struct{ dv *Device }

// NIC returns the device's nic.Host view.
func (dv *Device) NIC() nic.Host { return hostNIC{dv} }

func (h hostNIC) Pop(buf []byte) (int, error) {
	n, err := h.dv.Pop(buf)
	if errors.Is(err, ErrEmpty) {
		return 0, nic.ErrEmpty
	}
	return n, err
}

func (h hostNIC) Push(frame []byte) error {
	err := h.dv.Push(frame)
	if errors.Is(err, ErrFull) {
		return nic.ErrFull
	}
	return err
}

func (h hostNIC) FrameCap() int { return h.dv.cfg.BufSize }
