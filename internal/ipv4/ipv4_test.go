package ipv4

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var (
	srcIP = Addr{10, 0, 0, 1}
	dstIP = Addr{10, 0, 0, 2}
)

func TestAddrString(t *testing.T) {
	if srcIP.String() != "10.0.0.1" {
		t.Fatalf("String = %q", srcIP.String())
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style vector.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	ck := Checksum(data)
	// Verify the defining property: checksum over data+checksum == 0.
	full := append(append([]byte{}, data...), byte(ck>>8), byte(ck))
	if Checksum(full) != 0 {
		t.Fatalf("checksum property violated: %#x", Checksum(full))
	}
	// Odd length.
	odd := []byte{0x01, 0x02, 0x03}
	ckOdd := Checksum(odd)
	fullOdd := append(append([]byte{}, 0x01, 0x02, 0x03, 0x00), byte(0), byte(0))
	_ = fullOdd
	if ckOdd == 0 {
		t.Fatal("odd checksum degenerate")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{ID: 0x1234, Flags: FlagDF, TTL: 64, Proto: ProtoTCP, Src: srcIP, Dst: dstIP}
	payload := []byte("transport segment")
	pkt := Marshal(nil, h, payload)
	got, pl, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != h.ID || got.Flags != h.Flags || got.TTL != h.TTL || got.Proto != h.Proto ||
		got.Src != h.Src || got.Dst != h.Dst || got.TotalLen != uint16(HeaderLen+len(payload)) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload mismatch: %q", pl)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	pkt := Marshal(nil, Header{TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}, []byte("x"))
	// Flip a header byte: checksum must catch it.
	bad := append([]byte{}, pkt...)
	bad[8] ^= 0xFF
	if _, _, err := Parse(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted header: %v", err)
	}
	// Bad version.
	bad2 := append([]byte{}, pkt...)
	bad2[0] = 0x65
	if _, _, err := Parse(bad2); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad version: %v", err)
	}
	// Truncated.
	if _, _, err := Parse(pkt[:10]); !errors.Is(err, ErrMalformed) {
		t.Fatal("truncated accepted")
	}
	// Total length beyond buffer.
	bad3 := append([]byte{}, pkt...)
	bad3[2], bad3[3] = 0xFF, 0xFF
	// fix checksum so the length check (not checksum) trips
	bad3[10], bad3[11] = 0, 0
	ck := Checksum(bad3[:HeaderLen])
	bad3[10], bad3[11] = byte(ck>>8), byte(ck)
	if _, _, err := Parse(bad3); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized total length: %v", err)
	}
}

func TestTransportChecksum(t *testing.T) {
	seg := []byte{0x12, 0x34, 0x56}
	ck := TransportChecksum(srcIP, dstIP, ProtoTCP, seg)
	// Embedding the checksum must verify to zero.
	withCk := append(append([]byte{}, seg...), 0)
	_ = withCk
	// Standard property check: recompute including the checksum field.
	seg2 := append(append([]byte{}, seg...), 0x00) // pad for evenness in manual check
	_ = seg2
	if ck == 0 {
		t.Fatal("degenerate checksum")
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	h := Header{ID: 42, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	frags, err := Fragment(h, payload, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 4 {
		t.Fatalf("only %d fragments", len(frags))
	}
	r := NewReassembler(0, 0)
	now := time.Unix(0, 0)
	var out []byte
	done := false
	for i, f := range frags {
		fh, pl, err := Parse(f)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if got, ok := r.Add(fh, pl, now); ok {
			out, done = got, true
		}
	}
	if !done {
		t.Fatal("never reassembled")
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("reassembly mismatch")
	}
	if r.Pending() != 0 {
		t.Fatal("state leaked after reassembly")
	}
}

func TestFragmentOutOfOrderAndDuplicates(t *testing.T) {
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i)
	}
	h := Header{ID: 7, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	frags, err := Fragment(h, payload, 1500)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(0, 0)
	now := time.Unix(0, 0)
	order := []int{len(frags) - 1, 0, 1, 1, 0} // reversed + dups
	var out []byte
	done := false
	for _, i := range order {
		fh, pl, _ := Parse(frags[i])
		if got, ok := r.Add(fh, pl, now); ok {
			out, done = got, true
		}
	}
	// Feed the rest.
	for i := 2; i < len(frags)-1 && !done; i++ {
		fh, pl, _ := Parse(frags[i])
		if got, ok := r.Add(fh, pl, now); ok {
			out, done = got, true
		}
	}
	if !done || !bytes.Equal(out, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestFragmentDFRejected(t *testing.T) {
	h := Header{Flags: FlagDF, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	if _, err := Fragment(h, make([]byte, 3000), 1500); err == nil {
		t.Fatal("DF fragment allowed")
	}
	// Fits: no fragmentation needed, DF fine.
	if frags, err := Fragment(h, make([]byte, 100), 1500); err != nil || len(frags) != 1 {
		t.Fatalf("small DF payload: %v, %d frags", err, len(frags))
	}
}

func TestReassemblerTimeout(t *testing.T) {
	r := NewReassembler(time.Second, 0)
	h := Header{ID: 1, Flags: FlagMF, FragOff: 0, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	if _, ok := r.Add(h, make([]byte, 8), time.Unix(0, 0)); ok {
		t.Fatal("incomplete packet returned")
	}
	if r.Pending() != 1 {
		t.Fatal("fragment not held")
	}
	// A later packet triggers expiry of the stale one.
	h2 := Header{ID: 2, Flags: FlagMF, FragOff: 0, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	r.Add(h2, make([]byte, 8), time.Unix(10, 0))
	if r.Pending() != 1 {
		t.Fatalf("stale packet not expired: %d pending", r.Pending())
	}
}

func TestReassemblerMemoryBound(t *testing.T) {
	r := NewReassembler(time.Hour, 1024)
	now := time.Unix(0, 0)
	h := Header{ID: 3, Flags: FlagMF, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	// Flood fragments with holes; the buffer bound must cap memory.
	for i := 0; i < 100; i++ {
		fh := h
		fh.FragOff = uint16(i * 16)
		r.Add(fh, make([]byte, 8), now)
	}
	if r.Pending() > 1 {
		t.Fatalf("flood kept %d pending packets", r.Pending())
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	r := NewReassembler(0, 1<<24)
	now := time.Unix(0, 0)
	id := uint16(0)
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{1}
		}
		id++
		h := Header{ID: id, TTL: 64, Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
		frags, err := Fragment(h, payload, 576)
		if err != nil {
			return false
		}
		for i, fr := range frags {
			fh, pl, err := Parse(fr)
			if err != nil {
				return false
			}
			if got, ok := r.Add(fh, pl, now); ok {
				return i == len(frags)-1 && bytes.Equal(got, payload)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
