package ipv4

import (
	"sort"
	"sync"
	"time"
)

// Reassembler reconstructs fragmented IPv4 packets. Incomplete packets
// expire after a timeout, and total buffered bytes are bounded so a
// malicious peer cannot exhaust memory with fragment floods.
type Reassembler struct {
	mu      sync.Mutex
	pending map[reasmKey]*reasmState
	timeout time.Duration
	maxBuf  int
	buffer  int
}

type reasmKey struct {
	src, dst Addr
	id       uint16
	proto    byte
}

type reasmState struct {
	frags    []frag
	haveLast bool
	totalEnd int
	arrived  time.Time
	bytes    int
}

type frag struct {
	off  int
	data []byte
}

// NewReassembler creates a reassembler. timeout<=0 defaults to 30s;
// maxBuf<=0 defaults to 1 MiB.
func NewReassembler(timeout time.Duration, maxBuf int) *Reassembler {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if maxBuf <= 0 {
		maxBuf = 1 << 20
	}
	return &Reassembler{pending: make(map[reasmKey]*reasmState), timeout: timeout, maxBuf: maxBuf}
}

// Add processes one packet. Unfragmented packets return their payload
// immediately. Fragments return (nil,false) until the packet completes,
// then the reassembled payload.
func (r *Reassembler) Add(h Header, payload []byte, now time.Time) ([]byte, bool) {
	if h.Flags&FlagMF == 0 && h.FragOff == 0 {
		return payload, true
	}
	key := reasmKey{src: h.Src, dst: h.Dst, id: h.ID, proto: h.Proto}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)

	st := r.pending[key]
	if st == nil {
		st = &reasmState{arrived: now}
		r.pending[key] = st
	}
	if r.buffer+len(payload) > r.maxBuf {
		// Fragment flood: drop the whole pending packet.
		r.buffer -= st.bytes
		delete(r.pending, key)
		return nil, false
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	st.frags = append(st.frags, frag{off: int(h.FragOff), data: cp})
	st.bytes += len(cp)
	r.buffer += len(cp)
	if h.Flags&FlagMF == 0 {
		st.haveLast = true
		st.totalEnd = int(h.FragOff) + len(payload)
	}
	if !st.haveLast {
		return nil, false
	}

	// Check contiguous coverage [0, totalEnd).
	sort.Slice(st.frags, func(i, j int) bool { return st.frags[i].off < st.frags[j].off })
	next := 0
	for _, f := range st.frags {
		if f.off > next {
			return nil, false // hole
		}
		if end := f.off + len(f.data); end > next {
			next = end
		}
	}
	if next < st.totalEnd {
		return nil, false
	}

	out := make([]byte, st.totalEnd)
	for _, f := range st.frags {
		copy(out[f.off:], f.data)
	}
	r.buffer -= st.bytes
	delete(r.pending, key)
	return out, true
}

// Pending returns the number of incomplete packets held.
func (r *Reassembler) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

func (r *Reassembler) expireLocked(now time.Time) {
	for k, st := range r.pending {
		if now.Sub(st.arrived) > r.timeout {
			r.buffer -= st.bytes
			delete(r.pending, k)
		}
	}
}
