// Package ipv4 implements IPv4 header processing, the internet checksum,
// and fragmentation/reassembly for the in-TEE network stack.
package ipv4

import (
	"errors"
	"fmt"
)

// Protocol numbers used by the stack.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// HeaderLen is the size of a header without options (the stack never
// emits options and rejects packets whose IHL exceeds the buffer).
const HeaderLen = 20

// Addr is an IPv4 address.
type Addr [4]byte

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Header is a parsed IPv4 header.
type Header struct {
	TotalLen uint16
	ID       uint16
	Flags    uint8 // bit1 = DF, bit0 (of this field) = MF
	FragOff  uint16
	TTL      uint8
	Proto    byte
	Src      Addr
	Dst      Addr
}

// Flag bits for Header.Flags.
const (
	FlagMF uint8 = 1 // more fragments
	FlagDF uint8 = 2 // don't fragment
)

// ErrMalformed reports an unusable IPv4 packet.
var ErrMalformed = errors.New("ipv4: malformed packet")

// ErrChecksum reports a header checksum failure.
var ErrChecksum = errors.New("ipv4: bad header checksum")

// Checksum computes the internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// PseudoChecksum computes the TCP/UDP pseudo-header checksum component.
func PseudoChecksum(src, dst Addr, proto byte, length int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes the checksum of a TCP/UDP segment including
// the pseudo header.
func TransportChecksum(src, dst Addr, proto byte, segment []byte) uint16 {
	sum := PseudoChecksum(src, dst, proto, len(segment))
	for len(segment) >= 2 {
		sum += uint32(segment[0])<<8 | uint32(segment[1])
		segment = segment[2:]
	}
	if len(segment) == 1 {
		sum += uint32(segment[0]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// Parse decodes and validates an IPv4 packet, returning the header and
// its payload (aliasing buf).
func Parse(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderLen {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	if buf[0]>>4 != 4 {
		return Header{}, nil, fmt.Errorf("%w: version %d", ErrMalformed, buf[0]>>4)
	}
	ihl := int(buf[0]&0xF) * 4
	if ihl < HeaderLen || ihl > len(buf) {
		return Header{}, nil, fmt.Errorf("%w: ihl %d", ErrMalformed, ihl)
	}
	if Checksum(buf[:ihl]) != 0 {
		return Header{}, nil, ErrChecksum
	}
	var h Header
	h.TotalLen = uint16(buf[2])<<8 | uint16(buf[3])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(buf) {
		return Header{}, nil, fmt.Errorf("%w: total length %d", ErrMalformed, h.TotalLen)
	}
	h.ID = uint16(buf[4])<<8 | uint16(buf[5])
	h.Flags = buf[6] >> 5
	h.FragOff = (uint16(buf[6]&0x1F)<<8 | uint16(buf[7])) * 8
	h.TTL = buf[8]
	h.Proto = buf[9]
	copy(h.Src[:], buf[12:16])
	copy(h.Dst[:], buf[16:20])
	return h, buf[ihl:h.TotalLen], nil
}

// Marshal appends an encoded packet (header + payload) to dst.
func Marshal(dst []byte, h Header, payload []byte) []byte {
	total := HeaderLen + len(payload)
	start := len(dst)
	dst = append(dst,
		0x45, 0,
		byte(total>>8), byte(total),
		byte(h.ID>>8), byte(h.ID),
		(h.Flags<<5)|byte(h.FragOff/8>>8), byte(h.FragOff/8),
		h.TTL, h.Proto,
		0, 0, // checksum
	)
	dst = append(dst, h.Src[:]...)
	dst = append(dst, h.Dst[:]...)
	ck := Checksum(dst[start : start+HeaderLen])
	dst[start+10] = byte(ck >> 8)
	dst[start+11] = byte(ck)
	return append(dst, payload...)
}

// Fragment splits payload into IPv4 packets that fit mtu, all sharing
// id. If the payload fits, one unfragmented packet is produced.
func Fragment(h Header, payload []byte, mtu int) ([][]byte, error) {
	maxData := (mtu - HeaderLen) &^ 7 // fragment data must be 8-aligned
	if maxData <= 0 {
		return nil, fmt.Errorf("%w: mtu %d too small", ErrMalformed, mtu)
	}
	if HeaderLen+len(payload) <= mtu {
		h.Flags &^= FlagMF
		h.FragOff = 0
		return [][]byte{Marshal(nil, h, payload)}, nil
	}
	if h.Flags&FlagDF != 0 {
		return nil, fmt.Errorf("%w: DF set but payload %d exceeds mtu %d", ErrMalformed, len(payload), mtu)
	}
	var out [][]byte
	for off := 0; off < len(payload); off += maxData {
		end := off + maxData
		fh := h
		fh.FragOff = uint16(off)
		if end >= len(payload) {
			end = len(payload)
			fh.Flags &^= FlagMF
		} else {
			fh.Flags |= FlagMF
		}
		out = append(out, Marshal(nil, fh, payload[off:end]))
	}
	return out, nil
}
