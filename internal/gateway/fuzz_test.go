package gateway

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzTenantID drives the gateway's tenant-identifier parse/route path
// with hostile input: arbitrary hello bytes plus a queue count, checking
// that parsing never panics or accepts junk, that accepted ids roundtrip
// exactly, and that steering — the same FNV-1a construction the NIC's
// flow steering uses — always lands in range, for every id the parser
// can produce. The seed corpus mirrors the steering property-test
// shapes: boundary ids (zero, one, max), truncations, magic corruption,
// and oversize input.
func FuzzTenantID(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(EncodeHello(1), 1)
	f.Add(EncodeHello(1), 4)
	f.Add(EncodeHello(^TenantID(0)), 4)                         // max id
	f.Add(EncodeHello(0x1p8-1), 3)                              // non-power-of-two queues
	f.Add(append([]byte("CIO\x01"), 0, 0, 0, 0, 0, 0, 0, 0), 4) // zero id
	f.Add([]byte("CIO\x01"), 4)                                 // truncated id
	f.Add([]byte("XIO\x01AAAAAAAA"), 4)                         // corrupt magic
	f.Add(append(EncodeHello(7), 0xff), 4)                      // trailing byte
	f.Add(bytes.Repeat([]byte{0xff}, 4096), 16)                 // oversize
	// FNV-1a steering collision shape: sequential ids that the hash must
	// still spread (the property test's corpus shape for QueueFor).
	for id := TenantID(1); id <= 8; id++ {
		f.Add(EncodeHello(id), 8)
	}

	f.Fuzz(func(t *testing.T, hello []byte, queues int) {
		id, err := ParseHello(hello)
		if err != nil {
			// Rejections must be total: zero id, untouched input.
			if id != 0 {
				t.Fatalf("rejected hello returned id %v", id)
			}
			return
		}
		// Accepted hellos are exactly well-formed: canonical length,
		// canonical re-encoding, nonzero id.
		if id == 0 {
			t.Fatal("parser accepted the reserved zero id")
		}
		if len(hello) != HelloLen {
			t.Fatalf("parser accepted %d bytes, want exactly %d", len(hello), HelloLen)
		}
		if !bytes.Equal(EncodeHello(id), hello) {
			t.Fatalf("roundtrip mismatch: %x -> %v -> %x", hello, id, EncodeHello(id))
		}
		if got := TenantID(binary.BigEndian.Uint64(hello[4:])); got != id {
			t.Fatalf("id decode mismatch: %v != %v", got, id)
		}
		// Steering stays in range for any queue count, including the
		// degenerate ones, and is deterministic.
		for _, n := range []int{-1, 0, 1, 2, 3, 4, 8, 16, queues} {
			q := SteerTenant(id, n)
			if n <= 1 {
				if q != 0 {
					t.Fatalf("SteerTenant(%v, %d) = %d, want 0", id, n, q)
				}
				continue
			}
			if q < 0 || q >= n {
				t.Fatalf("SteerTenant(%v, %d) = %d out of range", id, n, q)
			}
			if q2 := SteerTenant(id, n); q2 != q {
				t.Fatalf("SteerTenant nondeterministic: %d vs %d", q, q2)
			}
		}
	})
}
