// Package gateway is the fan-in deployment of the paper's dual-boundary
// design (ROADMAP #5, torvmremix-shaped): one TEE terminates ctls for N
// tenants, maps each tenant to its own compartment with a per-tenant
// key, and multiplexes every flow over one shared multi-queue safe-ring
// device. The single-tenant examples prove the boundary; this package
// proves the *containment* — a misbehaving tenant is shed, backed off,
// or stickily evicted with a blast radius of exactly one tenant, while
// the device-wide fail-dead machinery stays reserved for host-level
// protocol violations.
//
// Trust model (DESIGN.md §12): tenants are mutually distrusting
// principals sharing the gateway TEE. A tenant may assume neighbors
// cannot read its plaintext (per-tenant keys, per-tenant compartment),
// cannot stall its flows (per-flow equality-only stall shedding), and
// cannot kill it (fault budgets are per-tenant and only a key-holder
// can burn its own). The host remains fully untrusted underneath —
// everything the safe ring already guarantees — and a host-level
// violation still kills the whole device, for every tenant: fail-dead
// containment layers under, not instead of, per-tenant eviction.
package gateway

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"confio/internal/compartment"
	"confio/internal/platform"
	"confio/internal/safering"
)

// TenantID identifies one tenant principal. Zero is reserved (never a
// valid tenant): it is what a parse failure and an unprovisioned lookup
// return, so it can never alias a real tenant's budget or meter.
type TenantID uint64

func (id TenantID) String() string { return fmt.Sprintf("tenant-%d", uint64(id)) }

// Hello is the cleartext flow preamble: magic then the big-endian
// tenant id. It only *routes* — it names the key the gateway should try
// — and is authenticated retroactively by the ctls handshake that
// follows (only the key-holder can complete it). Nothing the gateway
// does before handshake completion is allowed to burn the named
// tenant's eviction budget, because on-path hosts and rival tenants can
// forge this preamble at will.
const (
	helloMagic = "CIO\x01"
	HelloLen   = len(helloMagic) + 8
)

// Hello-layer errors.
var (
	// ErrHello rejects a malformed flow preamble (bad magic, short read,
	// zero id). The flow is dropped before any tenant state is touched.
	ErrHello = errors.New("gateway: malformed tenant hello")
	// ErrUnknownTenant rejects a well-formed hello naming an id the
	// gateway was not provisioned with.
	ErrUnknownTenant = errors.New("gateway: unknown tenant")
	// ErrTenantEvicted refuses a tenant whose fault budget is exhausted.
	// Eviction is sticky for the gateway's lifetime, mirroring the
	// sticky permanence of the device-wide death budget one layer down.
	ErrTenantEvicted = errors.New("gateway: tenant evicted (fault budget exhausted)")
	// ErrTenantBackoff refuses a flow while the tenant is inside a fault
	// backoff window (handshake failures or prior shed flows). Unlike
	// eviction it clears by itself; the refusal consumes no budget.
	ErrTenantBackoff = errors.New("gateway: tenant in fault backoff")
	// ErrFlowLimit refuses a flow that would exceed the tenant's
	// concurrent-flow quota. The refusal itself also counts as one
	// authenticated flood fault against the tenant's budget.
	ErrFlowLimit = errors.New("gateway: tenant flow limit exceeded")
)

// EncodeHello renders the flow preamble for tenant id.
func EncodeHello(id TenantID) []byte {
	b := make([]byte, HelloLen)
	copy(b, helloMagic)
	binary.BigEndian.PutUint64(b[len(helloMagic):], uint64(id))
	return b
}

// ParseHello validates a flow preamble and extracts the claimed tenant
// id. The input must be exactly HelloLen bytes of well-formed hello;
// anything else — hostile lengths included — is ErrHello with id zero.
func ParseHello(b []byte) (TenantID, error) {
	if len(b) != HelloLen || string(b[:len(helloMagic)]) != helloMagic {
		return 0, ErrHello
	}
	id := TenantID(binary.BigEndian.Uint64(b[len(helloMagic):]))
	if id == 0 {
		return 0, fmt.Errorf("%w: zero tenant id", ErrHello)
	}
	return id, nil
}

// TenantKey derives tenant id's ctls PSK from the gateway master secret
// (HMAC-SHA256 as the derivation PRF, domain-separated from every other
// use). In a real deployment the master secret is established by remote
// attestation of the gateway TEE and each tenant derives its own copy;
// here it stands in for that provisioning, exactly like the per-world
// PSKs in core.
func TenantKey(master []byte, id TenantID) []byte {
	m := hmac.New(sha256.New, master)
	m.Write([]byte("confio-gateway-tenant-key"))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	m.Write(b[:])
	return m.Sum(nil)
}

// SteerTenant maps a tenant id onto one of n queues with the same
// FNV-1a construction the NIC uses for flow steering (nic.FlowHash), so
// tenant-to-queue attribution in experiments matches what the ring
// actually does to the tenant's frames. n <= 1 always steers to 0.
func SteerTenant(id TenantID, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		fnvOffset32 = 2166136261
		fnvPrime32  = 16777619
	)
	h := uint32(fnvOffset32)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	for _, c := range b {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return int(h % uint32(n))
}

// tenant is the gateway's per-tenant containment state. All fields past
// the immutable ones are guarded by mu.
type tenant struct {
	id    TenantID
	psk   []byte
	meter *platform.Meter // this tenant's slice of the TenantBank

	// app/gate are the tenant's own compartment pair: flows terminate
	// ctls inside the tenant's domain and reach the shared I/O stack
	// only through the tenant's gate (trusted-component-allocates), so
	// no neighbor's buffer is ever reachable from this tenant's path.
	app  *compartment.Domain
	gate *compartment.Gate

	mu sync.Mutex
	// faults is the tenant's eviction budget: every *authenticated*
	// fault (flood over quota, shed stalled flow) takes one admission;
	// exhaustion is sticky eviction. Handshake failures deliberately do
	// NOT feed this machine — see handshakeFault.
	faults *safering.Quarantine
	// hsFaults rate-limits handshake failures per claimed id with
	// backoff only: a huge budget makes it practically inexhaustible, so
	// an attacker replaying someone else's tenant id can slow that
	// tenant down briefly but never evict it.
	hsFaults *safering.Quarantine
	evicted  bool
	flows    map[*flow]struct{}
}

// clock returns the policy clock (the chaos harness injects a fake one).
func (t *tenant) clock(p safering.RecoveryPolicy) func() time.Time {
	if p.Clock != nil {
		return p.Clock
	}
	return time.Now
}

// admissible refuses evicted and backed-off tenants without consuming
// any budget. now comes from the policy clock.
func (t *tenant) admissible(now time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.evicted {
		return ErrTenantEvicted
	}
	if now.Before(t.faults.NotBefore()) || now.Before(t.hsFaults.NotBefore()) {
		return ErrTenantBackoff
	}
	return nil
}

// handshakeFault charges one failed ctls handshake against the claimed
// id. Backoff only, never eviction: pre-handshake identity is just a
// routing claim, and charging it to the sticky budget would hand any
// on-path host (or rival tenant) a kill switch for arbitrary tenants.
func (t *tenant) handshakeFault() {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.hsFaults.Admit() // budget is effectively unlimited; arms backoff
	t.meter.Drop(1)
}

// fault charges one authenticated fault (flood, stall-shed) against the
// tenant's eviction budget. Returns ErrTenantEvicted exactly once, on
// the admission that exhausts the budget; the caller then sheds every
// live flow. Later calls on an evicted tenant are no-ops.
func (t *tenant) fault() error {
	t.mu.Lock()
	if t.evicted {
		t.mu.Unlock()
		return ErrTenantEvicted
	}
	err := t.faults.Admit()
	if !errors.Is(err, safering.ErrBudgetExhausted) {
		// Admitted (backoff armed) or still in backoff — either way the
		// tenant lives; in-backoff faults don't stack extra penalties.
		t.mu.Unlock()
		return nil
	}
	t.evicted = true
	flows := make([]*flow, 0, len(t.flows))
	for f := range t.flows {
		flows = append(flows, f)
	}
	t.mu.Unlock()

	t.meter.Evict(1)
	for _, f := range flows {
		f.shed(ErrTenantEvicted)
	}
	return ErrTenantEvicted
}

// Evicted reports whether the tenant has been stickily evicted.
func (t *tenant) Evicted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

func (t *tenant) addFlow(f *flow, max int) error {
	t.mu.Lock()
	if t.evicted {
		t.mu.Unlock()
		return ErrTenantEvicted
	}
	if max > 0 && len(t.flows) >= max {
		t.mu.Unlock()
		t.meter.Drop(1)
		// The quota breach is an authenticated fault: only the key-holder
		// can open authenticated flows, so only the key-holder can flood.
		if err := t.fault(); err != nil {
			return err
		}
		return ErrFlowLimit
	}
	t.flows[f] = struct{}{}
	t.mu.Unlock()
	return nil
}

func (t *tenant) dropFlow(f *flow) {
	t.mu.Lock()
	delete(t.flows, f)
	t.mu.Unlock()
}

func (t *tenant) flowCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}
