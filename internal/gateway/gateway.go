package gateway

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"confio/internal/compartment"
	"confio/internal/ctls"
	"confio/internal/platform"
	"confio/internal/safering"
	"confio/internal/tcp"
)

// Handler processes one decrypted tenant message and returns the reply
// to send back on the same flow (nil reply sends nothing). It runs
// inside the tenant's compartment context: msg is the tenant's
// plaintext and must not be retained past the call. The default handler
// echoes, which is what the benchmarks and chaos scenarios drive; the
// middlebox example installs an inspection handler.
type Handler func(id TenantID, msg []byte) ([]byte, error)

// EchoHandler returns every message unchanged.
func EchoHandler(_ TenantID, msg []byte) ([]byte, error) { return msg, nil }

// Config assembles a Gateway.
type Config struct {
	// Master is the gateway master secret; per-tenant ctls keys are
	// derived from it (TenantKey).
	Master []byte
	// Tenants is the provisioned tenant set. Flows claiming any other id
	// are refused before any per-tenant state exists.
	Tenants []TenantID
	// MaxFlows caps concurrent authenticated flows per tenant; breaching
	// it is a flood fault against the tenant's eviction budget. 0 means
	// unlimited (no flood containment — tests only).
	MaxFlows int
	// TenantPolicy is the per-tenant fault budget: every authenticated
	// fault (flood, stall-shed) takes one admission, and exhaustion is
	// sticky eviction. Layered strictly above the device-wide recovery
	// policy — tenant faults never touch the device death budget.
	TenantPolicy safering.RecoveryPolicy
	// StallTimeout is how long a flow may hold submitted-but-undelivered
	// replies without progress before it is shed (equality-only aging,
	// exactly the watchdog's trust model: observing our own progress
	// counter places no new trust in the tenant). Zero disables
	// stall-shedding.
	StallTimeout time.Duration
	// Clock supplies time for stall aging and admission checks; nil
	// means time.Now. The chaos harness injects its fake clock here and
	// in TenantPolicy.Clock, then drives PollStalls directly.
	Clock func() time.Time
	// Handler processes tenant messages; nil means EchoHandler.
	Handler Handler
	// Bank receives per-tenant attribution (frames, drops, evictions,
	// latency); nil meters nothing. Tenant ctls crypto costs land on the
	// same per-tenant meters.
	Bank *platform.TenantBank
	// HandshakeTimeout bounds hello+handshake on a new flow; zero means
	// 5s. Without it a dribbling client would pin accept goroutines.
	HandshakeTimeout time.Duration
}

// Gateway is a multi-tenant ctls-terminating relay: it accepts tenant
// flows from a listener, authenticates each against its per-tenant key,
// contains per-tenant faults (backoff, shedding, sticky eviction) and
// hands decrypted messages to the Handler.
type Gateway struct {
	cfg     Config
	clock   func() time.Time
	handler Handler
	tenants map[TenantID]*tenant

	mu      sync.Mutex
	ls      []*tcp.Listener
	serving sync.WaitGroup
	stop    chan struct{}
	stopped bool
}

// New builds a gateway from cfg.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Master) == 0 {
		return nil, fmt.Errorf("gateway: empty master secret")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("gateway: no tenants provisioned")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Handler == nil {
		cfg.Handler = EchoHandler
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	pol := cfg.TenantPolicy
	if pol.Clock == nil {
		pol.Clock = cfg.Clock
	}
	if pol.DeathBudget <= 0 {
		pol.DeathBudget = 4
	}
	// Handshake quarantine: same backoff shape, but a budget no realistic
	// run exhausts — failed handshakes are unauthenticated and must never
	// become an eviction path (see tenant.handshakeFault).
	hsPol := pol
	hsPol.DeathBudget = 1 << 30

	g := &Gateway{
		cfg:     cfg,
		clock:   cfg.Clock,
		handler: cfg.Handler,
		tenants: make(map[TenantID]*tenant, len(cfg.Tenants)),
		stop:    make(chan struct{}),
	}
	for i, id := range cfg.Tenants {
		if id == 0 {
			return nil, fmt.Errorf("gateway: tenant id 0 is reserved")
		}
		if _, dup := g.tenants[id]; dup {
			return nil, fmt.Errorf("gateway: duplicate tenant %v", id)
		}
		m := cfg.Bank.Meter(uint64(id))
		app := compartment.NewDomain(fmt.Sprintf("%v-app", id), m)
		ioDom := compartment.NewDomain(fmt.Sprintf("%v-io", id), m)
		// Seed keeps per-tenant jitter streams independent but the whole
		// run reproducible from the policy seed.
		tp, hp := pol, hsPol
		tp.Seed = pol.Seed + int64(i)*2
		hp.Seed = pol.Seed + int64(i)*2 + 1
		g.tenants[id] = &tenant{
			id:       id,
			psk:      TenantKey(cfg.Master, id),
			meter:    m,
			app:      app,
			gate:     compartment.NewGate(app, ioDom, m),
			faults:   safering.NewQuarantine(tp),
			hsFaults: safering.NewQuarantine(hp),
			flows:    make(map[*flow]struct{}),
		}
	}
	return g, nil
}

// Serve accepts tenant flows from l until the listener or gateway
// closes. Run it in a goroutine; multiple listeners may serve one
// gateway.
func (g *Gateway) Serve(l *tcp.Listener) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.ls = append(g.ls, l)
	g.serving.Add(1)
	g.mu.Unlock()
	defer g.serving.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go g.handleConn(c)
	}
}

// handleConn runs one flow from hello to teardown.
func (g *Gateway) handleConn(c *tcp.Conn) {
	// Bound the unauthenticated prefix of the flow.
	c.SetReadDeadline(time.Now().Add(g.cfg.HandshakeTimeout))

	var hello [HelloLen]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		c.Close()
		return
	}
	id, err := ParseHello(hello[:])
	if err != nil {
		c.Close()
		return
	}
	t, ok := g.tenants[id]
	if !ok {
		// Unprovisioned id: no tenant state exists to charge or to burn.
		c.Close()
		return
	}
	if err := t.admissible(g.clock()); err != nil {
		t.meter.Drop(1)
		c.Close()
		return
	}

	// Terminate ctls inside the tenant's own compartment: the record
	// layer sees the shared I/O stack only through the tenant's gate.
	gc := newGateFlowConn(c, t.gate, t.app)
	sec, err := ctls.Server(gc, t.psk, t.meter)
	if err != nil {
		// Unauthenticated failure: backoff on the *claimed* id only —
		// never the sticky budget (a forged hello must not evict anyone).
		t.handshakeFault()
		gc.Close()
		return
	}
	c.SetReadDeadline(time.Time{})

	f := &flow{c: c, sec: sec, tenant: t}
	if err := t.addFlow(f, g.cfg.MaxFlows); err != nil {
		sec.Close()
		return
	}
	defer func() {
		t.dropFlow(f)
		sec.Close()
	}()
	g.relay(f)
}

// relay pumps one authenticated flow through the handler.
func (g *Gateway) relay(f *flow) {
	buf := make([]byte, ctls.MaxPlaintext)
	for {
		n, err := f.sec.Read(buf)
		if err != nil {
			return
		}
		start := g.clock()
		resp, herr := g.handler(f.tenant.id, buf[:n])
		if herr != nil {
			return
		}
		if len(resp) > 0 {
			// pending/progress bracket the write so the stall watchdog can
			// see submitted-but-undelivered work (equality-only aging).
			f.pending.Add(1)
			if _, err := f.sec.Write(resp); err != nil {
				return
			}
			f.progress.Add(1)
		}
		f.tenant.meter.Frame(1)
		f.tenant.meter.RecordLatency(g.clock().Sub(start))
	}
}

// flow is one authenticated tenant connection.
type flow struct {
	c      *tcp.Conn
	sec    *ctls.Conn
	tenant *tenant

	// pending counts replies submitted to the flow; progress counts
	// replies fully delivered. pending != progress means work is
	// outstanding and the stall watchdog ages it.
	pending  atomic.Uint64
	progress atomic.Uint64

	// Watchdog aging state (PollStalls only; no lock needed — polls are
	// serialized by the poller).
	lastProgress uint64
	lastChange   time.Time

	shedOnce sync.Once
	shedErr  error
}

// shed terminates the flow abruptly: Abort wakes any writer blocked on
// the tenant's unread window, so a stalled peer cannot pin the relay
// goroutine either.
func (f *flow) shed(err error) {
	f.shedOnce.Do(func() {
		f.shedErr = err
		f.tenant.meter.Drop(1)
		f.c.Abort()
	})
}

// PollStalls runs one equality-only aging scan over every live flow,
// shedding flows whose submitted replies made no progress for
// StallTimeout and charging each shed as an authenticated fault. The
// chaos harness calls this directly on its fake clock; production nodes
// run it from a ticker (Node wires this up).
func (g *Gateway) PollStalls() {
	if g.cfg.StallTimeout <= 0 {
		return
	}
	now := g.clock()
	for _, t := range g.tenants {
		t.mu.Lock()
		flows := make([]*flow, 0, len(t.flows))
		for f := range t.flows {
			flows = append(flows, f)
		}
		t.mu.Unlock()

		for _, f := range flows {
			p := f.progress.Load()
			if f.pending.Load() == p {
				// No outstanding work: reset aging.
				f.lastProgress, f.lastChange = p, now
				continue
			}
			if p != f.lastProgress || f.lastChange.IsZero() {
				f.lastProgress, f.lastChange = p, now
				continue
			}
			if now.Sub(f.lastChange) < g.cfg.StallTimeout {
				continue
			}
			// Equality held across the timeout: the tenant stopped
			// draining. Shed the flow and charge the fault; eviction (if
			// the budget just died) sheds the siblings too.
			f.shed(ErrTenantBackoff)
			_ = t.fault()
		}
	}
}

// TenantEvicted reports whether id has been stickily evicted.
func (g *Gateway) TenantEvicted(id TenantID) bool {
	t, ok := g.tenants[id]
	return ok && t.Evicted()
}

// TenantFlows returns id's live authenticated flow count.
func (g *Gateway) TenantFlows(id TenantID) int {
	t, ok := g.tenants[id]
	if !ok {
		return 0
	}
	return t.flowCount()
}

// Close stops serving and sheds every live flow.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	ls := g.ls
	g.ls = nil
	close(g.stop)
	g.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, t := range g.tenants {
		t.mu.Lock()
		flows := make([]*flow, 0, len(t.flows))
		for f := range t.flows {
			flows = append(flows, f)
		}
		t.mu.Unlock()
		for _, f := range flows {
			f.shed(errors.New("gateway: closed"))
		}
	}
	g.serving.Wait()
}

// gateFlowConn mediates a flow's transport through the tenant's gate
// with the trusted-component-allocates policy (the same L5 idiom as the
// dual-boundary design): the tenant's domain allocates in the I/O
// domain for sends and provides the receive buffer, so the shared I/O
// stack never holds a pointer into any tenant's domain.
type gateFlowConn struct {
	c     *tcp.Conn
	gate  *compartment.Gate
	app   *compartment.Domain
	rxBuf *compartment.Buffer
}

const gateFlowBufSize = 64 << 10

func newGateFlowConn(c *tcp.Conn, gate *compartment.Gate, app *compartment.Domain) *gateFlowConn {
	return &gateFlowConn{c: c, gate: gate, app: app, rxBuf: app.Alloc(gateFlowBufSize)}
}

func (g *gateFlowConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > gateFlowBufSize {
			n = gateFlowBufSize
		}
		b := g.gate.AllocTx(n)
		if err := g.gate.FillTx(b, p[:n]); err != nil {
			b.Free()
			return total, err
		}
		err := g.gate.SubmitTx(b, func(payload []byte) error {
			_, werr := g.c.Write(payload[:n])
			return werr
		})
		b.Free()
		if err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

func (g *gateFlowConn) Read(p []byte) (int, error) {
	want := len(p)
	if want > gateFlowBufSize {
		want = gateFlowBufSize
	}
	n, err := g.gate.Rx(g.rxBuf, func(into []byte) (int, error) {
		return g.c.Read(into[:want])
	})
	if n > 0 {
		data, aerr := g.rxBuf.Access(g.app)
		if aerr != nil {
			return 0, aerr
		}
		copy(p, data[:n])
	}
	return n, err
}

func (g *gateFlowConn) Close() error {
	defer g.rxBuf.Free()
	return g.gate.Call(func(*compartment.Domain) error { return g.c.Close() })
}
