package gateway

import (
	"fmt"
	"io"
	"time"

	"confio/internal/ctls"
	"confio/internal/ipv4"
	"confio/internal/netstack"
	"confio/internal/nic"
	"confio/internal/platform"
	"confio/internal/safering"
	"confio/internal/simnet"
)

// Port is the gateway's well-known listen port.
const Port = 8443

var (
	gwIP     = ipv4.Addr{10, 9, 0, 1}
	clientIP = ipv4.Addr{10, 9, 0, 2}
)

// NodeConfig assembles a full gateway deployment testbed.
type NodeConfig struct {
	// Queues is the gateway's safe-ring queue count (the production
	// configuration is multi-queue with EventIdx on).
	Queues int
	// EventIdx enables doorbells + event-idx suppression on the
	// gateway's device (the notification-efficient production path).
	EventIdx bool
	// Gateway is the gateway configuration (Bank defaults to a fresh
	// TenantBank when nil so per-tenant attribution is always on).
	Gateway Config
}

// DefaultNodeConfig returns the production-shaped deployment: 4 queues,
// EventIdx on, 3 tenants, flood and stall containment armed.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		Queues:   4,
		EventIdx: true,
		Gateway: Config{
			Master:       []byte("attested-gateway-master-0123456789abcdef"),
			Tenants:      []TenantID{1, 2, 3},
			MaxFlows:     8,
			StallTimeout: 500 * time.Millisecond,
		},
	}
}

// Node is one fully assembled gateway deployment on a simulated
// network: the gateway TEE (multi-queue safe ring, EventIdx, netstack,
// the Gateway itself) plus a client TEE tenants dial from. It is the
// substrate the gateway benchmarks, chaos scenarios and attack matrix
// all drive.
type Node struct {
	Net  *simnet.Network
	GW   *Gateway
	Bank *platform.MeterBank  // per-queue device meters (gateway side)
	Tb   *platform.TenantBank // per-tenant attribution

	cfg         NodeConfig
	gwStack     *netstack.Stack
	clientStack *netstack.Stack
	gwMep       *safering.MultiEndpoint
	closers     []func()
}

// NewNode assembles a deployment from cfg. Callers must Close it.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.Gateway.Bank == nil {
		cfg.Gateway.Bank = platform.NewTenantBank()
	}
	n := &Node{Net: simnet.New(), cfg: cfg, Tb: cfg.Gateway.Bank}

	// Gateway side: multi-queue safe ring behind one fail-dead latch,
	// per-queue metering, RSS-style multi-pump, progress watchdog.
	rcfg := safering.DefaultConfig()
	rcfg.MAC[5] = 0xA1
	if cfg.EventIdx {
		rcfg.Notify = true
		rcfg.EventIdx = true
	}
	n.Bank = platform.NewMeterBank(cfg.Queues)
	mep, err := safering.NewMulti(rcfg, cfg.Queues, n.Bank)
	if err != nil {
		return nil, err
	}
	n.gwMep = mep
	mhp := safering.NewMultiHostPort(mep.SharedQueues())
	mpump := nic.StartMultiPump(mhp.HostNICs(), n.Net.NewPort())
	n.closers = append(n.closers, mpump.Stop)
	wd := safering.WatchDevice(safering.DefaultWatchdogConfig(), mep)
	wd.Start()
	n.closers = append(n.closers, wd.Stop)
	n.gwStack = netstack.New(mep.NIC(), gwIP)
	n.gwStack.Start()
	n.closers = append(n.closers, n.gwStack.Close)

	// Client side: its own single-queue safe ring (the tenants' transport
	// is not what is under test; the gateway's is).
	ccfg := safering.DefaultConfig()
	ccfg.MAC[5] = 0xC2
	cep, err := safering.New(ccfg, nil)
	if err != nil {
		n.Close()
		return nil, err
	}
	cpump := nic.StartPump(safering.NewHostPort(cep.Shared()).NIC(), n.Net.NewPort())
	n.closers = append(n.closers, cpump.Stop)
	n.clientStack = netstack.New(cep.NIC(), clientIP)
	n.clientStack.Start()
	n.closers = append(n.closers, n.clientStack.Close)

	gw, err := New(cfg.Gateway)
	if err != nil {
		n.Close()
		return nil, err
	}
	n.GW = gw
	l, err := n.gwStack.Listen(Port, 64)
	if err != nil {
		n.Close()
		return nil, err
	}
	go gw.Serve(l)
	n.closers = append(n.closers, gw.Close)

	// Stall poller: only when running on the real clock — chaos runs
	// inject a fake clock and drive PollStalls themselves.
	if cfg.Gateway.StallTimeout > 0 && cfg.Gateway.Clock == nil {
		stop := make(chan struct{})
		go func() {
			tick := time.NewTicker(cfg.Gateway.StallTimeout / 4)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					gw.PollStalls()
				}
			}
		}()
		n.closers = append(n.closers, func() { close(stop) })
	}
	return n, nil
}

// DialRaw opens an unauthenticated transport connection to the gateway
// (the attack harness writes forged hellos and junk over it).
func (n *Node) DialRaw() (io.ReadWriteCloser, error) {
	return n.clientStack.Dial(gwIP, Port, 10*time.Second)
}

// DialTenant opens an authenticated flow as tenant id: hello, then the
// ctls handshake under the tenant's derived key. The returned conn
// carries the tenant's plaintext messages.
func (n *Node) DialTenant(id TenantID) (io.ReadWriteCloser, error) {
	return n.dial(id, TenantKey(n.cfg.Gateway.Master, id))
}

// DialTenantKey is DialTenant with an explicit key — the chaos harness
// uses a corrupted key to model a tenant whose provisioning went wrong.
func (n *Node) DialTenantKey(id TenantID, key []byte) (io.ReadWriteCloser, error) {
	return n.dial(id, key)
}

func (n *Node) dial(id TenantID, key []byte) (io.ReadWriteCloser, error) {
	c, err := n.clientStack.Dial(gwIP, Port, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("gateway: dial: %w", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write(EncodeHello(id)); err != nil {
		c.Close()
		return nil, err
	}
	sec, err := ctls.Client(c, key, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("gateway: %v handshake: %w", id, err)
	}
	c.SetReadDeadline(time.Time{})
	return &tenantConn{Conn: sec, raw: c}, nil
}

// tenantConn closes the transport under the record layer too.
type tenantConn struct {
	*ctls.Conn
	raw io.Closer
}

func (t *tenantConn) Close() error {
	err := t.Conn.Close()
	t.raw.Close()
	return err
}

// GatewayTransport exposes the gateway's multi-queue endpoint (the
// attack harness reaches through it to play the malicious host).
func (n *Node) GatewayTransport() *safering.MultiEndpoint { return n.gwMep }

// GatewayStack exposes the gateway-side netstack (degradation checks).
func (n *Node) GatewayStack() *netstack.Stack { return n.gwStack }

// Close tears the deployment down.
func (n *Node) Close() {
	for i := len(n.closers) - 1; i >= 0; i-- {
		n.closers[i]()
	}
	n.closers = nil
}
