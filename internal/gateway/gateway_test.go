package gateway

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"confio/internal/safering"
)

func testNode(t *testing.T, mutate func(*NodeConfig)) *Node {
	t.Helper()
	cfg := DefaultNodeConfig()
	cfg.Gateway.TenantPolicy = safering.RecoveryPolicy{
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		JitterFrac:   0,
		DeathBudget:  2,
		BudgetWindow: time.Minute,
		Seed:         1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	t.Cleanup(n.Close)
	return n
}

func echoOnce(t *testing.T, c io.ReadWriteCloser, msg string) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestMultiTenantEcho(t *testing.T) {
	n := testNode(t, nil)
	for _, id := range []TenantID{1, 2, 3} {
		c, err := n.DialTenant(id)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		echoOnce(t, c, "hello from "+id.String())
		c.Close()
	}
	// Per-tenant attribution landed on each tenant's own meter.
	for _, id := range []TenantID{1, 2, 3} {
		cs := n.Tb.Tenant(uint64(id))
		if cs.Frames != 1 {
			t.Errorf("%v frames = %d, want 1", id, cs.Frames)
		}
		if cs.CryptoBytes == 0 {
			t.Errorf("%v crypto bytes = 0, want > 0 (ctls on tenant meter)", id)
		}
		if cs.Evictions != 0 || cs.Drops != 0 {
			t.Errorf("%v unexpected faults: %+v", id, cs)
		}
	}
	if lat := n.Tb.TenantLatency(1); lat.Count != 1 {
		t.Errorf("tenant 1 latency count = %d, want 1", lat.Count)
	}
}

func TestWrongKeyBacksOffWithoutEviction(t *testing.T) {
	n := testNode(t, nil)
	bad := bytes.Repeat([]byte{0x42}, 32)
	if _, err := n.DialTenantKey(2, bad); err == nil {
		t.Fatal("handshake with corrupt key succeeded")
	}
	if n.GW.TenantEvicted(2) {
		t.Fatal("handshake failure evicted the tenant (must be backoff-only)")
	}
	// The eviction budget must be untouched: a handshake failure is an
	// unauthenticated fault and only arms the handshake backoff.
	if got := n.Tb.Tenant(2).Evictions; got != 0 {
		t.Fatalf("evictions = %d after handshake failure, want 0", got)
	}
	// After the backoff clears, the real key works again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := n.DialTenant(2)
		if err == nil {
			echoOnce(t, c, "recovered")
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant 2 never recovered from handshake backoff: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestForgedHelloDoesNotBurnVictimBudget(t *testing.T) {
	n := testNode(t, nil)
	// An attacker on the client TEE forges tenant 1's hello but cannot
	// complete the handshake (no key). Repeat past the eviction budget.
	for i := 0; i < 5; i++ {
		c, err := n.DialRaw()
		if err != nil {
			t.Fatalf("raw dial: %v", err)
		}
		c.Write(EncodeHello(1))
		c.Write([]byte("not a ctls client hello at all............"))
		buf := make([]byte, 64)
		c.Read(buf) // gateway closes; drain to observe it
		c.Close()
		time.Sleep(20 * time.Millisecond) // clear handshake backoff
	}
	if n.GW.TenantEvicted(1) {
		t.Fatal("forged hellos evicted the victim: unauthenticated faults must never burn the eviction budget")
	}
	if got := n.Tb.Tenant(1).Evictions; got != 0 {
		t.Fatalf("victim evictions = %d, want 0", got)
	}
}

func TestFloodEvictsOnlyTheFlooder(t *testing.T) {
	n := testNode(t, func(cfg *NodeConfig) { cfg.Gateway.MaxFlows = 1 })

	// A neighbor with a live flow, before and throughout the flood.
	nb, err := n.DialTenant(3)
	if err != nil {
		t.Fatalf("neighbor dial: %v", err)
	}
	defer nb.Close()
	echoOnce(t, nb, "pre-flood")

	// Tenant 1 holds its one allowed flow, then floods. Each quota
	// breach is one authenticated fault; budget 2 means the third breach
	// is sticky eviction.
	hold, err := n.DialTenant(1)
	if err != nil {
		t.Fatalf("hold dial: %v", err)
	}
	defer hold.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !n.GW.TenantEvicted(1) {
		if time.Now().After(deadline) {
			t.Fatal("flooder never evicted")
		}
		if c, err := n.DialTenant(1); err == nil {
			// Flow refused post-handshake: first read reports the cut.
			c.Write([]byte("x"))
			buf := make([]byte, 8)
			c.Read(buf)
			c.Close()
		}
		time.Sleep(15 * time.Millisecond) // let the fault backoff clear
	}

	// Eviction is sticky and attributable.
	if _, err := n.DialTenant(1); err == nil {
		t.Fatal("evicted tenant dialed successfully")
	}
	if got := n.Tb.Tenant(1).Evictions; got != 1 {
		t.Errorf("flooder evictions = %d, want 1", got)
	}
	if n.Tb.Tenant(1).Drops == 0 {
		t.Error("flooder drops = 0, want > 0")
	}

	// The neighbor never noticed.
	echoOnce(t, nb, "post-flood")
	if n.GW.TenantEvicted(3) {
		t.Error("neighbor evicted")
	}
	if cs := n.Tb.Tenant(3); cs.Drops != 0 || cs.Evictions != 0 {
		t.Errorf("neighbor charged for the flood: %+v", cs)
	}

	// Per-tenant eviction consumed nothing from the device-wide death
	// budget: the device is alive and a reincarnation attempt is refused
	// with ErrNotDead (not ErrQuarantine/ErrBudgetExhausted).
	if dead := n.GatewayTransport().Dead(); dead != nil {
		t.Fatalf("device died during tenant eviction: %v", dead)
	}
	if _, err := n.GatewayTransport().Reincarnate(); !errors.Is(err, safering.ErrNotDead) {
		t.Fatalf("device reincarnate = %v, want ErrNotDead", err)
	}
	if deaths := n.Bank.Snapshot().Deaths; deaths != 0 {
		t.Fatalf("device deaths = %d during tenant eviction, want 0", deaths)
	}
}

func TestStalledTenantIsShedNotWedged(t *testing.T) {
	n := testNode(t, func(cfg *NodeConfig) {
		cfg.Gateway.StallTimeout = 150 * time.Millisecond
		cfg.Gateway.TenantPolicy.DeathBudget = 100 // shed, don't evict, here
	})

	nb, err := n.DialTenant(2)
	if err != nil {
		t.Fatalf("neighbor dial: %v", err)
	}
	defer nb.Close()

	// Tenant 1 writes a pile of requests and never reads a reply: its
	// receive window fills, the relay's reply write blocks, and the
	// stall watchdog must shed the flow rather than wedge the pump.
	st, err := n.DialTenant(1)
	if err != nil {
		t.Fatalf("staller dial: %v", err)
	}
	defer st.Close()
	msg := make([]byte, 8<<10)
	go func() {
		for i := 0; i < 64; i++ {
			if _, err := st.Write(msg); err != nil {
				return
			}
		}
	}()

	// Registration happens server-side after the handshake; wait for the
	// flow to appear before waiting for it to be shed.
	deadline := time.Now().Add(5 * time.Second)
	for n.GW.TenantFlows(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("staller flow never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for n.GW.TenantFlows(1) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled flow never shed")
		}
		// The neighbor keeps echoing while the staller ages out — the
		// shared pump is demonstrably not wedged.
		echoOnce(t, nb, "alive")
		time.Sleep(20 * time.Millisecond)
	}
	if n.Tb.Tenant(1).Drops == 0 {
		t.Error("shed flow not charged to the staller")
	}
	if cs := n.Tb.Tenant(2); cs.Drops != 0 {
		t.Errorf("neighbor charged for the stall: %+v", cs)
	}
	if n.GW.TenantEvicted(1) {
		t.Error("single stall evicted the tenant under a large budget")
	}
	echoOnce(t, nb, "still alive")
}

func TestUnknownTenantRefused(t *testing.T) {
	n := testNode(t, nil)
	if _, err := n.DialTenant(99); err == nil {
		t.Fatal("unprovisioned tenant dialed successfully")
	}
	if n.Tb.Tenant(99).Drops != 0 {
		t.Fatal("unprovisioned id grew tenant state")
	}
}

func TestParseHello(t *testing.T) {
	if id, err := ParseHello(EncodeHello(7)); err != nil || id != 7 {
		t.Fatalf("roundtrip = (%v, %v), want (7, nil)", id, err)
	}
	cases := [][]byte{
		nil,
		{},
		[]byte("CIO"),
		[]byte("CIO\x01"),
		append([]byte("XIO\x01"), make([]byte, 8)...),
		append([]byte("CIO\x01"), make([]byte, 8)...), // zero id
		append(EncodeHello(7), 0),                     // trailing byte
		bytes.Repeat([]byte{0xff}, 1<<10),
	}
	for _, b := range cases {
		if id, err := ParseHello(b); err == nil {
			t.Errorf("ParseHello(%d bytes) accepted id %v", len(b), id)
		} else if id != 0 {
			t.Errorf("ParseHello error path returned id %v, want 0", id)
		}
	}
}

func TestTenantKeysAreDistinct(t *testing.T) {
	master := []byte("m")
	k1, k2 := TenantKey(master, 1), TenantKey(master, 2)
	if bytes.Equal(k1, k2) {
		t.Fatal("distinct tenants derived the same key")
	}
	if bytes.Equal(TenantKey([]byte("other"), 1), k1) {
		t.Fatal("distinct masters derived the same key")
	}
}
