// Package netvsc is the second lift-and-shift baseline: a model of the
// Hyper-V vmbus network channel (netvsc), the driver family whose
// hardening history the paper studies in Figure 3.
//
// Unlike virtio's descriptor rings, vmbus channels are *byte* rings with
// variable-length messages inline: a header carries the message type,
// payload length, and a transaction id that the historical driver used
// as a raw pointer — the bug class behind several of the "add checks"
// commits ("Add validation for untrusted Hyper-V values"). The model
// reproduces:
//
//   - inbound length fields the driver must bound (or be led out of the
//     message into stale ring bytes),
//   - transaction ids the driver must validate against its own pending
//     table (or complete the wrong send, twice),
//   - the systematic SWIOTLB copy applied when the channel is treated
//     as untrusted, and its cost.
//
// The Hardening toggles mirror Figure 3's commit categories, like
// package virtio does for Figure 4.
package netvsc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"confio/internal/nic"
	"confio/internal/platform"
	"confio/internal/shmem"
)

// Message types on the channel.
const (
	// MsgData carries one Ethernet frame (RNDIS data packet analogue).
	MsgData uint32 = 1
	// MsgComplete acknowledges a transmitted frame by transaction id.
	MsgComplete uint32 = 2
)

const headerBytes = 16 // type u32, len u32, xactid u64

// Hardening mirrors the Figure 3 commit categories for netvsc.
type Hardening struct {
	Checks   bool // validate untrusted Hyper-V values (lengths, ids)
	MemInit  bool // scrub ring memory before reuse
	Copies   bool // SWIOTLB-style systematic staging copy
	Races    bool // snapshot headers once instead of re-reading
	Restrict bool // refuse oversized/unknown message types outright
}

// FullHardening enables every retrofit.
func FullHardening() Hardening {
	return Hardening{Checks: true, MemInit: true, Copies: true, Races: true, Restrict: true}
}

// Config fixes the channel geometry.
type Config struct {
	MAC [6]byte
	MTU int
	// RingBytes is the byte capacity of each direction (power of two).
	RingBytes int
	// MaxInflight bounds pending unacknowledged sends (power of two).
	MaxInflight int
	Hardening   Hardening
}

// DefaultConfig matches the other transports' scale.
func DefaultConfig() Config {
	return Config{
		MAC:         [6]byte{0x02, 0x00, 0x00, 0xD2, 0x00, 0x01},
		MTU:         1500,
		RingBytes:   1 << 19, // 512 KiB per direction
		MaxInflight: 256,
	}
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("netvsc: invalid config")

// ErrFull means the outbound ring has no room.
var ErrFull = errors.New("netvsc: ring full")

// ErrEmpty means no inbound message is pending.
var ErrEmpty = errors.New("netvsc: ring empty")

// ErrChannel is a fatal channel inconsistency detected by a hardened
// driver.
var ErrChannel = errors.New("netvsc: channel inconsistency")

// Validate checks structural requirements.
func (c Config) Validate() error {
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	switch {
	case c.MTU < 64 || c.MTU > 9216:
		return fmt.Errorf("%w: MTU %d", ErrConfig, c.MTU)
	case !pow2(c.RingBytes) || c.RingBytes < 4*(c.MTU+headerBytes+64):
		return fmt.Errorf("%w: ring bytes %d", ErrConfig, c.RingBytes)
	case !pow2(c.MaxInflight) || c.MaxInflight < 2:
		return fmt.Errorf("%w: max inflight %d", ErrConfig, c.MaxInflight)
	}
	return nil
}

func (c Config) maxPayload() int { return c.MTU + 64 }

// ring is one direction of the vmbus channel: a byte ring with
// producer/consumer byte offsets. Offsets are modelled as atomics
// (shared cache lines); message bytes live in the masked shared region.
type ring struct {
	mem *shmem.Region
	//ciovet:shared producer byte position (monotonic), peer-advanced
	prod atomic.Uint64
	//ciovet:shared consumer byte position (monotonic), peer-advanced
	cons atomic.Uint64
}

func newRing(bytes int) (*ring, error) {
	mem, err := shmem.NewRegion(bytes)
	if err != nil {
		return nil, err
	}
	return &ring{mem: mem}, nil
}

func align8(n int) int { return (n + 7) &^ 7 }

// writeMsg appends a message; returns false when there is no room.
func (r *ring) writeMsg(prod uint64, typ uint32, xact uint64, payload []byte) (newProd uint64, ok bool) {
	total := uint64(align8(headerBytes + len(payload)))
	cons := r.cons.Load()
	if prod-cons+total > uint64(r.mem.Size()) {
		return prod, false
	}
	r.mem.SetU32(prod, typ)
	r.mem.SetU32(prod+4, uint32(len(payload)))
	r.mem.SetU64(prod+8, xact)
	r.mem.WriteAt(payload, prod+headerBytes)
	return prod + total, true
}

// Channel is the shared state of one netvsc device instance: two byte
// rings (guest->host "out", host->guest "in").
type Channel struct {
	Cfg Config
	Out *ring // unexported type, exported field: accessed via methods below
	In  *ring
}

// OutMem / InMem expose the raw ring memory for the attack harness.
func (ch *Channel) OutMem() *shmem.Region { return ch.Out.mem }

// InMem exposes the inbound ring memory.
func (ch *Channel) InMem() *shmem.Region { return ch.In.mem }

// ForgeInProd lets a malicious host publish an arbitrary inbound
// producer offset.
func (ch *Channel) ForgeInProd(v uint64) { ch.In.prod.Store(v) }

// InProd returns the inbound producer offset.
func (ch *Channel) InProd() uint64 { return ch.In.prod.Load() }

// Driver is the guest-side netvsc driver.
type Driver struct {
	cfg   Config
	meter *platform.Meter
	ch    *Channel

	mu   sync.Mutex
	dead error

	outProd     uint64
	outScrubbed uint64
	inCons      uint64

	nextXact uint64
	pending  []bool // pending[xact & (MaxInflight-1)]
	inflight int

	// Stats mirrors virtio.Stats semantics.
	blocked          uint64
	trustedUnchecked uint64

	pool sync.Pool
}

// Stats reports the driver's trust accounting.
type Stats struct {
	Blocked          uint64
	TrustedUnchecked uint64
}

// New creates a connected driver and honest host endpoint.
func New(cfg Config, meter *platform.Meter) (*Driver, *Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	out, err := newRing(cfg.RingBytes)
	if err != nil {
		return nil, nil, err
	}
	in, err := newRing(cfg.RingBytes)
	if err != nil {
		return nil, nil, err
	}
	ch := &Channel{Cfg: cfg, Out: out, In: in}
	d := &Driver{cfg: cfg, meter: meter, ch: ch}
	d.pending = make([]bool, cfg.MaxInflight)
	d.pool.New = func() any { return make([]byte, cfg.maxPayload()) }
	return d, &Host{cfg: cfg, ch: ch, meter: meter}, nil
}

// Channel exposes the shared channel state.
func (d *Driver) Channel() *Channel { return d.ch }

// Stats returns the trust accounting counters.
func (d *Driver) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Blocked: d.blocked, TrustedUnchecked: d.trustedUnchecked}
}

// Dead returns the fatal error if the hardened driver gave up.
func (d *Driver) Dead() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

func (d *Driver) fail(err error) error {
	if d.dead == nil {
		d.dead = err
	}
	return d.dead
}

// Send transmits one Ethernet frame.
func (d *Driver) Send(frame []byte) error {
	if len(frame) == 0 || len(frame) > d.cfg.maxPayload() {
		return fmt.Errorf("netvsc: frame size %d out of range", len(frame))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead != nil {
		return d.dead
	}
	if d.inflight >= d.cfg.MaxInflight {
		return ErrFull
	}
	if d.cfg.Hardening.MemInit {
		d.scrubConsumedLocked()
	}
	xact := d.nextXact
	slot := xact & uint64(d.cfg.MaxInflight-1)
	if d.pending[slot] {
		return ErrFull // wrapped onto an unacknowledged send
	}

	payload := frame
	if d.cfg.Hardening.Copies {
		staged := d.pool.Get().([]byte)
		copy(staged[:len(frame)], frame)
		d.meter.Copy(len(frame))
		payload = staged[:len(frame)]
		defer d.pool.Put(staged)
	}
	newProd, ok := d.ch.Out.writeMsg(d.outProd, MsgData, xact, payload)
	if !ok {
		return ErrFull
	}
	d.meter.Copy(len(frame))
	d.outProd = newProd
	d.ch.Out.prod.Store(newProd)
	d.nextXact++
	d.pending[slot] = true
	d.inflight++
	d.meter.Notify(1) // vmbus signal
	d.meter.CrossTEE(1)
	return nil
}

// scrubConsumedLocked zeroes the outbound ring bytes the host has
// already consumed, so stale guest frames do not linger in host-visible
// memory ("add initialization to memory", Figure 3). The consumer offset
// is host-published; a bogus value is ignored rather than trusted.
func (d *Driver) scrubConsumedLocked() {
	cons := d.ch.Out.cons.Load()
	if cons < d.outScrubbed || cons > d.outProd {
		return
	}
	if n := cons - d.outScrubbed; n > 0 {
		zero := make([]byte, 4096)
		for off := d.outScrubbed; off < cons; {
			chunk := cons - off
			if chunk > uint64(len(zero)) {
				chunk = uint64(len(zero))
			}
			d.ch.Out.mem.WriteAt(zero[:chunk], off)
			off += chunk
		}
		d.meter.Copy(int(n))
		d.outScrubbed = cons
	}
}

// RxFrame is one received frame (always a private copy with Copies on;
// a zero-copy ring view otherwise).
type RxFrame struct {
	drv      *Driver
	data     []byte
	pooled   []byte
	released bool
}

// Bytes returns the frame contents.
func (f *RxFrame) Bytes() []byte { return f.data }

// Release returns pooled storage.
func (f *RxFrame) Release() {
	if f.released {
		return
	}
	f.released = true
	if f.pooled != nil {
		f.drv.pool.Put(f.pooled[:cap(f.pooled)])
		f.pooled = nil
	}
	f.data = nil
}

// Recv processes the next inbound message. Completion messages are
// handled internally (and may surface a fatal error); data messages are
// returned to the caller.
func (d *Driver) Recv() (*RxFrame, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Bound the messages drained per call: a forged producer offset in
	// the legacy (unchecked) configuration would otherwise walk the
	// parser through terabytes of phantom ring space in one call. The
	// CPU burn is an availability attack (out of the threat model); the
	// bound keeps the simulation responsive while preserving the
	// integrity consequences.
	for budget := 4096; budget > 0; budget-- {
		if d.dead != nil {
			return nil, d.dead
		}
		prod := d.ch.In.prod.Load()
		d.meter.Check(1)
		if prod == d.inCons {
			return nil, ErrEmpty
		}
		if prod-d.inCons > uint64(d.cfg.RingBytes) {
			if d.cfg.Hardening.Checks {
				d.blocked++
				return nil, d.fail(fmt.Errorf("%w: inbound producer %d", ErrChannel, prod))
			}
			d.trustedUnchecked++
		}

		base := d.inCons
		typ := d.ch.In.mem.U32(base)
		plen := d.ch.In.mem.U32(base + 4)
		xact := d.ch.In.mem.U64(base + 8)

		// Bound the payload length. Hardened: within the published data
		// and the frame maximum. Legacy: trusted outright — a lying
		// length walks the parser into stale ring bytes (leak) and
		// desynchronizes message framing.
		maxLen := uint32(d.cfg.maxPayload())
		avail := uint32(prod - base - headerBytes)
		if d.cfg.Hardening.Checks {
			d.meter.Check(2)
			if plen > maxLen || plen > avail || (typ == MsgData && plen == 0) {
				d.blocked++
				return nil, d.fail(fmt.Errorf("%w: inbound length %d (avail %d)", ErrChannel, plen, avail))
			}
		} else if plen > maxLen || plen > avail {
			d.trustedUnchecked++
			if plen > uint32(d.cfg.RingBytes)-headerBytes {
				plen = uint32(d.cfg.RingBytes) - headerBytes
			}
		}
		if !d.cfg.Hardening.Races {
			// Legacy double fetch: re-read the header length for the
			// consume-offset arithmetic (the device may have changed it
			// since the copy bound was taken).
			//ciovet:allow doublefetch deliberate legacy baseline: models the un-hardened vmbus re-read (Fig. 3 bug class), gated off by Hardening.Races
			plen2 := d.ch.In.mem.U32(base + 4)
			if plen2 != plen {
				d.trustedUnchecked++
			}
			d.inCons = base + uint64(align8(headerBytes+int(plen2)))
		} else {
			d.inCons = base + uint64(align8(headerBytes+int(plen)))
		}
		d.ch.In.cons.Store(d.inCons)

		switch typ {
		case MsgComplete:
			d.handleComplete(xact)
			continue // completions are internal; keep draining

		case MsgData:
			if d.cfg.Hardening.Copies {
				buf := d.pool.Get().([]byte)
				if int(plen) > cap(buf) {
					buf = make([]byte, plen)
				}
				d.ch.In.mem.ReadAt(buf[:plen], base+headerBytes)
				d.meter.Copy(int(plen))
				return &RxFrame{drv: d, data: buf[:plen], pooled: buf}, nil
			}
			// Zero-copy view when contiguous, else copy.
			off := (base + headerBytes) & uint64(d.cfg.RingBytes-1)
			if off+uint64(plen) <= uint64(d.cfg.RingBytes) {
				//ciovet:allow sharedescape deliberate legacy baseline: un-hardened zero-copy view, gated off by Hardening.Copies
				return &RxFrame{drv: d, data: d.ch.In.mem.Slice(off, int(plen))}, nil
			}
			buf := make([]byte, plen)
			d.ch.In.mem.ReadAt(buf, base+headerBytes)
			return &RxFrame{drv: d, data: buf}, nil

		default:
			if d.cfg.Hardening.Restrict {
				d.blocked++
				return nil, d.fail(fmt.Errorf("%w: unknown message type %d", ErrChannel, typ))
			}
			d.trustedUnchecked++
			continue // legacy: silently skip unknown messages
		}
	}
	return nil, ErrEmpty // drain budget exhausted; caller polls again
}

// handleComplete retires a pending send named by a host transaction id —
// the value the historical driver trusted as a pointer.
func (d *Driver) handleComplete(xact uint64) {
	slot := xact & uint64(d.cfg.MaxInflight-1)
	if d.cfg.Hardening.Checks {
		d.meter.Check(1)
		if xact >= d.nextXact || !d.pending[slot] {
			d.blocked++
			return
		}
	} else if xact >= d.nextXact || !d.pending[slot] {
		// Legacy: complete whatever the masked id names (double
		// completion / wrong completion corrupts the pending table).
		d.trustedUnchecked++
	}
	if d.pending[slot] {
		d.pending[slot] = false
		d.inflight--
	} else if !d.cfg.Hardening.Checks {
		// Double completion drives the inflight count negative in the
		// legacy driver; clamp to keep the simulation running.
		if d.inflight > 0 {
			d.inflight--
		}
	}
}

// Host is the honest host-side endpoint of the channel.
type Host struct {
	cfg   Config
	ch    *Channel
	meter *platform.Meter

	mu      sync.Mutex
	inProd  uint64
	outCons uint64
}

// Pop dequeues the next guest frame into buf and acknowledges it.
func (h *Host) Pop(buf []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	prod := h.ch.Out.prod.Load()
	if prod == h.outCons {
		return 0, ErrEmpty
	}
	base := h.outCons
	typ := h.ch.Out.mem.U32(base)
	plen := h.ch.Out.mem.U32(base + 4)
	xact := h.ch.Out.mem.U64(base + 8)
	if typ != MsgData || plen == 0 || int(plen) > h.cfg.maxPayload() || int(plen) > len(buf) {
		return 0, fmt.Errorf("netvsc host: bad outbound message type=%d len=%d", typ, plen)
	}
	h.ch.Out.mem.ReadAt(buf[:plen], base+headerBytes)
	h.outCons = base + uint64(align8(headerBytes+int(plen)))
	h.ch.Out.cons.Store(h.outCons)

	// Acknowledge with a completion message on the inbound ring.
	newProd, ok := h.ch.In.writeMsg(h.inProd, MsgComplete, xact, nil)
	if !ok {
		return 0, ErrFull
	}
	h.inProd = newProd
	h.ch.In.prod.Store(newProd)
	h.meter.Notify(1)
	h.meter.CrossTEE(1)
	return int(plen), nil
}

// Push delivers one frame toward the guest.
func (h *Host) Push(frame []byte) error {
	if len(frame) == 0 || len(frame) > h.cfg.maxPayload() {
		return fmt.Errorf("netvsc host: frame size %d out of range", len(frame))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	newProd, ok := h.ch.In.writeMsg(h.inProd, MsgData, 0, frame)
	if !ok {
		return ErrFull
	}
	h.inProd = newProd
	h.ch.In.prod.Store(newProd)
	h.meter.Notify(1)
	h.meter.CrossTEE(1)
	return nil
}

// --- nic adapters ---

type guestNIC struct{ d *Driver }

// NIC returns the driver's nic.Guest view.
func (d *Driver) NIC() nic.Guest { return guestNIC{d} }

func (g guestNIC) Send(frame []byte) error {
	switch err := g.d.Send(frame); {
	case err == nil:
		return nil
	case errors.Is(err, ErrFull):
		return nic.ErrFull
	case errors.Is(err, ErrChannel):
		return nic.ErrClosed
	default:
		return err
	}
}

func (g guestNIC) Recv() (nic.Frame, error) {
	f, err := g.d.Recv()
	switch {
	case err == nil:
		return f, nil
	case errors.Is(err, ErrEmpty):
		return nil, nic.ErrEmpty
	case errors.Is(err, ErrChannel):
		return nil, nic.ErrClosed
	default:
		return nil, err
	}
}

func (g guestNIC) MAC() [6]byte { return g.d.cfg.MAC }
func (g guestNIC) MTU() int     { return g.d.cfg.MTU }

type hostNIC struct{ h *Host }

// NIC returns the host endpoint's nic.Host view.
func (h *Host) NIC() nic.Host { return hostNIC{h} }

func (n hostNIC) Pop(buf []byte) (int, error) {
	c, err := n.h.Pop(buf)
	if errors.Is(err, ErrEmpty) {
		return 0, nic.ErrEmpty
	}
	return c, err
}

func (n hostNIC) Push(frame []byte) error {
	err := n.h.Push(frame)
	if errors.Is(err, ErrFull) {
		return nic.ErrFull
	}
	return err
}

func (n hostNIC) FrameCap() int { return n.h.cfg.maxPayload() }
