package netvsc

import (
	"bytes"
	"errors"
	"testing"

	"confio/internal/platform"
)

func mkFrame(n int, seed byte) []byte {
	f := make([]byte, n)
	for i := range f {
		f[i] = seed + byte(i)
	}
	return f
}

func pair(t *testing.T, h Hardening) (*Driver, *Host) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hardening = h
	d, host, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, host
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MTU: 10, RingBytes: 1 << 19, MaxInflight: 256},
		{MTU: 1500, RingBytes: 1000, MaxInflight: 256},
		{MTU: 1500, RingBytes: 4096, MaxInflight: 256}, // too small for 4 frames
		{MTU: 1500, RingBytes: 1 << 19, MaxInflight: 3},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestSendPopRoundTripWithWrap(t *testing.T) {
	for _, h := range []Hardening{{}, FullHardening()} {
		d, host := pair(t, h)
		buf := make([]byte, d.cfg.maxPayload())
		// Enough traffic to wrap the byte ring several times.
		for i := 0; i < 3000; i++ {
			f := mkFrame(64+i%1400, byte(i))
			if err := d.Send(f); err != nil {
				t.Fatalf("%+v send %d: %v", h, i, err)
			}
			n, err := host.Pop(buf)
			if err != nil {
				t.Fatalf("%+v pop %d: %v", h, i, err)
			}
			if !bytes.Equal(buf[:n], f) {
				t.Fatalf("%+v frame %d corrupted", h, i)
			}
			// Drain the completion so inflight doesn't saturate.
			if _, err := d.Recv(); !errors.Is(err, ErrEmpty) {
				t.Fatalf("%+v completion drain: %v", h, err)
			}
		}
	}
}

func TestPushRecvRoundTripWithWrap(t *testing.T) {
	for _, h := range []Hardening{{}, FullHardening()} {
		d, host := pair(t, h)
		for i := 0; i < 3000; i++ {
			f := mkFrame(64+i%1400, byte(i))
			if err := host.Push(f); err != nil {
				t.Fatalf("push %d: %v", i, err)
			}
			rx, err := d.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if !bytes.Equal(rx.Bytes(), f) {
				t.Fatalf("frame %d corrupted", i)
			}
			rx.Release()
		}
	}
}

func TestInflightBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInflight = 4
	d, _, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Send(mkFrame(64, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Send(mkFrame(64, 1)); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestRingFullBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingBytes = 1 << 13 // 8 KiB: ~5 max frames
	cfg.MaxInflight = 256
	d, _, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sent int
	for i := 0; i < 100; i++ {
		if err := d.Send(mkFrame(1400, 1)); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatal(err)
			}
			break
		}
		sent++
	}
	if sent == 0 || sent >= 100 {
		t.Fatalf("ring never filled (sent %d)", sent)
	}
}

func TestSendRejectsBadSizes(t *testing.T) {
	d, _ := pair(t, Hardening{})
	if err := d.Send(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := d.Send(make([]byte, d.cfg.maxPayload()+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestInboundLengthLie(t *testing.T) {
	// Unhardened: the driver trusts the length and walks into stale ring
	// bytes. Hardened: fatal.
	d, host := pair(t, Hardening{})
	// Seed the inbound ring with stale secret bytes beyond the message.
	secret := []byte("stale-ring-secret-data")
	d.Channel().InMem().WriteAt(secret, headerBytes+8)
	if err := host.Push(mkFrame(8, 1)); err != nil {
		t.Fatal(err)
	}
	// Host lies about the length after publishing.
	d.Channel().InMem().SetU32(4, uint32(8+len(secret)))
	rx, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rx.Bytes(), secret) {
		t.Fatal("unhardened driver should leak stale ring bytes")
	}
	if d.Stats().TrustedUnchecked == 0 {
		t.Fatal("unchecked trust not accounted")
	}

	dh, hosth := pair(t, FullHardening())
	if err := hosth.Push(mkFrame(8, 1)); err != nil {
		t.Fatal(err)
	}
	dh.Channel().InMem().SetU32(4, uint32(dh.cfg.RingBytes))
	if _, err := dh.Recv(); !errors.Is(err, ErrChannel) {
		t.Fatalf("hardened driver accepted lied length: %v", err)
	}
	if dh.Dead() == nil {
		t.Fatal("hardened driver should be dead")
	}
}

func TestHeaderDoubleFetchFramingDesync(t *testing.T) {
	// Races off: the consume offset re-reads the length, so a host that
	// flips it between fetches desynchronizes framing (and is counted).
	d, host := pair(t, Hardening{Checks: true}) // checks on, races off
	if err := host.Push(mkFrame(100, 1)); err != nil {
		t.Fatal(err)
	}
	// This is a sequenced simulation: emulate the flip by rewriting the
	// length between Recv's two reads is not possible in-process, so we
	// verify the hardened variant reads once instead.
	dr, hostr := pair(t, Hardening{Checks: true, Races: true})
	if err := hostr.Push(mkFrame(100, 1)); err != nil {
		t.Fatal(err)
	}
	rx, err := dr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rx.Release()
	rx2, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rx2.Release()
}

func TestForgedCompletionXact(t *testing.T) {
	// Unhardened: a forged completion id retires the wrong send.
	d, _ := pair(t, Hardening{})
	if err := d.Send(mkFrame(64, 1)); err != nil {
		t.Fatal(err)
	}
	// Host forges a completion for a transaction never sent.
	in := d.Channel()
	newProd, ok := in.In.writeMsg(0, MsgComplete, 999999, nil)
	if !ok {
		t.Fatal("write completion")
	}
	in.ForgeInProd(newProd)
	if _, err := d.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("recv: %v", err)
	}
	if d.Stats().TrustedUnchecked == 0 {
		t.Fatal("forged completion not accounted")
	}

	// Hardened: blocked, pending send stays pending.
	dh, _ := pair(t, FullHardening())
	if err := dh.Send(mkFrame(64, 1)); err != nil {
		t.Fatal(err)
	}
	inh := dh.Channel()
	newProd, ok = inh.In.writeMsg(0, MsgComplete, 999999, nil)
	if !ok {
		t.Fatal("write completion")
	}
	inh.ForgeInProd(newProd)
	if _, err := dh.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("recv: %v", err)
	}
	st := dh.Stats()
	if st.Blocked == 0 {
		t.Fatal("forged completion not blocked")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
}

func TestUnknownMessageType(t *testing.T) {
	// Legacy: silently skipped. Restrict: fatal.
	d, _ := pair(t, Hardening{})
	ch := d.Channel()
	newProd, _ := ch.In.writeMsg(0, 77, 0, []byte{1, 2, 3})
	ch.ForgeInProd(newProd)
	if _, err := d.Recv(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("legacy skip: %v", err)
	}
	if d.Stats().TrustedUnchecked == 0 {
		t.Fatal("unknown type not accounted")
	}

	dh, _ := pair(t, FullHardening())
	chh := dh.Channel()
	newProd, _ = chh.In.writeMsg(0, 77, 0, []byte{1, 2, 3})
	chh.ForgeInProd(newProd)
	if _, err := dh.Recv(); !errors.Is(err, ErrChannel) {
		t.Fatalf("restricted: %v", err)
	}
}

func TestZeroCopyViewVsCopy(t *testing.T) {
	// Without Copies, the returned frame is a view the host can rewrite
	// (double fetch); with Copies it is immune.
	d, host := pair(t, Hardening{})
	if err := host.Push([]byte("original-payload")); err != nil {
		t.Fatal(err)
	}
	rx, err := d.Recv()
	if err != nil {
		t.Fatal(err)
	}
	d.Channel().InMem().WriteAt([]byte("rewritten!!!!!!!"), headerBytes)
	if string(rx.Bytes()) == "original-payload" {
		t.Fatal("zero-copy view should observe host rewrite")
	}

	dc, hostc := pair(t, Hardening{Copies: true})
	if err := hostc.Push([]byte("original-payload")); err != nil {
		t.Fatal(err)
	}
	rxc, err := dc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	dc.Channel().InMem().WriteAt([]byte("rewritten!!!!!!!"), headerBytes)
	if string(rxc.Bytes()) != "original-payload" {
		t.Fatal("copied frame affected by host rewrite")
	}
	rxc.Release()
}

func TestForgedInboundProducerOverclaim(t *testing.T) {
	dh, _ := pair(t, FullHardening())
	dh.Channel().ForgeInProd(uint64(dh.cfg.RingBytes) * 3)
	if _, err := dh.Recv(); !errors.Is(err, ErrChannel) {
		t.Fatalf("hardened: %v", err)
	}

	du, _ := pair(t, Hardening{})
	du.Channel().ForgeInProd(uint64(du.cfg.RingBytes) * 3)
	// Legacy: trusted; parses garbage (type 0 = unknown, skipped) and is
	// accounted. Must not panic.
	if _, err := du.Recv(); err != nil && !errors.Is(err, ErrEmpty) {
		t.Fatalf("unhardened: %v", err)
	}
	if du.Stats().TrustedUnchecked == 0 {
		t.Fatal("overclaim not accounted")
	}
}

func TestCopiesCostIsMetered(t *testing.T) {
	var m0, m1 platform.Meter
	cfg := DefaultConfig()
	d0, h0, _ := New(cfg, &m0)
	cfg.Hardening = Hardening{Copies: true}
	d1, h1, _ := New(cfg, &m1)

	buf := make([]byte, cfg.maxPayload())
	for i := 0; i < 10; i++ {
		if err := d0.Send(mkFrame(1000, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := h0.Pop(buf); err != nil {
			t.Fatal(err)
		}
		if err := d1.Send(mkFrame(1000, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.Pop(buf); err != nil {
			t.Fatal(err)
		}
	}
	if m1.Snapshot().BytesCopied <= m0.Snapshot().BytesCopied {
		t.Fatalf("SWIOTLB staging should cost copies: %d vs %d",
			m1.Snapshot().BytesCopied, m0.Snapshot().BytesCopied)
	}
}

func TestMemInitScrubsConsumedRing(t *testing.T) {
	// Without MemInit a transmitted frame lingers in the host-visible
	// ring after consumption; with it, the next send scrubs it.
	secret := append([]byte("LINGERING-SECRET"), mkFrame(64, 0)...)

	d0, h0 := pair(t, Hardening{})
	if err := d0.Send(secret); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d0.cfg.maxPayload())
	if _, err := h0.Pop(buf); err != nil {
		t.Fatal(err)
	}
	if err := d0.Send(mkFrame(64, 1)); err != nil {
		t.Fatal(err)
	}
	lingering := make([]byte, len(secret))
	d0.Channel().OutMem().ReadAt(lingering, headerBytes)
	if !bytes.Contains(lingering, []byte("LINGERING-SECRET")) {
		t.Fatal("expected stale frame in unhardened ring")
	}

	d1, h1 := pair(t, Hardening{MemInit: true})
	if err := d1.Send(secret); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Pop(buf); err != nil {
		t.Fatal(err)
	}
	if err := d1.Send(mkFrame(64, 1)); err != nil {
		t.Fatal(err)
	}
	gone := make([]byte, len(secret))
	d1.Channel().OutMem().ReadAt(gone, headerBytes)
	if bytes.Contains(gone, []byte("LINGERING-SECRET")) {
		t.Fatal("MemInit did not scrub the consumed ring")
	}
}
