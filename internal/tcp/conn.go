package tcp

import (
	"io"
	"time"

	"confio/internal/ipv4"
)

// State is a TCP connection state (RFC 793 names).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"Closed", "SynSent", "SynRcvd", "Established", "FinWait1",
	"FinWait2", "CloseWait", "Closing", "LastAck", "TimeWait",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "Unknown"
}

// Conn is one TCP connection. Read and Write block (honoring deadlines);
// all protocol processing happens under the owning endpoint's lock.
type Conn struct {
	ep       *Endpoint
	key      connKey
	state    State
	listener *Listener

	// Send state. sndBuf holds all unacknowledged and unsent payload
	// starting at sequence sndUna.
	iss       uint32
	sndUna    uint32
	sndNxt    uint32
	sndWnd    uint32
	sndBuf    []byte
	sndClosed bool // FIN queued by Close
	finSent   bool
	finAcked  bool
	mss       int

	// Receive state.
	irs        uint32
	rcvNxt     uint32
	rcvBuf     []byte
	ooo        map[uint32][]byte
	finRcvd    bool
	lastAdvWnd uint32

	// Timers.
	// Congestion control (Reno-flavoured: slow start + AIMD).
	cwnd     uint32
	ssthresh uint32

	rto         time.Duration
	rtxDeadline time.Time
	retries     int
	dupAcks     int
	probeAt     time.Time
	timeWaitAt  time.Time

	connErr     error
	closeCalled bool
	notify      chan struct{}

	readDeadline  time.Time
	writeDeadline time.Time
}

func newConn(e *Endpoint, key connKey) *Conn {
	return &Conn{
		ep:       e,
		key:      key,
		mss:      e.mss,
		cwnd:     10 * uint32(e.mss), // RFC 6928 initial window
		ssthresh: sndBufMax,
		rto:      rtoInitial,
		ooo:      make(map[uint32][]byte),
		notify:   make(chan struct{}),
	}
}

// State returns the connection state.
func (c *Conn) State() State {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	return c.state
}

// Err returns the connection's fatal error, if any.
func (c *Conn) Err() error {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	return c.connErr
}

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.lport }

// RemotePort returns the remote port.
func (c *Conn) RemotePort() uint16 { return c.key.rport }

// RemoteIP returns the remote address.
func (c *Conn) RemoteIP() ipv4.Addr { return c.key.rip }

// SetReadDeadline bounds future Reads (zero = no deadline).
func (c *Conn) SetReadDeadline(t time.Time) {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	c.readDeadline = t
}

// SetWriteDeadline bounds future Writes (zero = no deadline).
func (c *Conn) SetWriteDeadline(t time.Time) {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	c.writeDeadline = t
}

func (c *Conn) notifyAllLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

func (c *Conn) advWndLocked() uint16 {
	w := rcvBufMax - len(c.rcvBuf)
	if w < 0 {
		w = 0
	}
	if w > 0xFFFF {
		w = 0xFFFF
	}
	c.lastAdvWnd = uint32(w)
	return uint16(w)
}

// sendSegLocked emits one segment with the connection's current ack and
// window.
func (c *Conn) sendSegLocked(flags uint8, seq uint32, payload []byte, mss uint16) {
	h := Header{
		SrcPort: c.key.lport, DstPort: c.key.rport,
		Seq: seq, Flags: flags, Window: c.advWndLocked(), MSS: mss,
	}
	if flags&FlagACK != 0 {
		h.Ack = c.rcvNxt
	}
	c.ep.emit(c.key.rip, Marshal(nil, c.ep.ip, c.key.rip, h, payload))
}

func (c *Conn) sendSynLocked() {
	flags := uint8(FlagSYN)
	if c.state == StateSynRcvd {
		flags |= FlagACK
	}
	c.sendSegLocked(flags, c.iss, nil, uint16(c.ep.mss))
	c.armRtxLocked()
}

func (c *Conn) sendAckLocked() {
	c.sendSegLocked(FlagACK, c.sndNxt, nil, 0)
}

func (c *Conn) armRtxLocked() {
	c.rtxDeadline = c.ep.now().Add(c.rto)
}

// teardownLocked kills the connection with err and wakes all waiters.
func (c *Conn) teardownLocked(err error) {
	if c.connErr == nil {
		c.connErr = err
	}
	c.state = StateClosed
	delete(c.ep.conns, c.key)
	c.notifyAllLocked()
}

// abortLocked sends RST and tears down.
func (c *Conn) abortLocked() {
	if c.state != StateClosed && c.state != StateTimeWait {
		c.sendSegLocked(FlagRST|FlagACK, c.sndNxt, nil, 0)
	}
	c.teardownLocked(ErrClosed)
}

// Abort resets the connection immediately (RST).
func (c *Conn) Abort() {
	c.ep.mu.Lock()
	c.abortLocked()
	q := c.ep.takePending()
	c.ep.mu.Unlock()
	c.ep.flush(q)
}

// --- segment processing ---

// segmentLocked is the RFC 793 event "SEGMENT ARRIVES".
func (c *Conn) segmentLocked(h Header, payload []byte) {
	switch c.state {
	case StateSynSent:
		c.synSentLocked(h)
		return
	case StateClosed:
		return
	case StateTimeWait:
		// Retransmitted FIN: re-ack and restart the 2MSL wait.
		if h.Flags&FlagFIN != 0 {
			c.sendAckLocked()
			c.timeWaitAt = c.ep.now().Add(timeWaitDur)
		}
		return
	}

	// RST processing.
	if h.Flags&FlagRST != 0 {
		if seqGEQ(h.Seq, c.rcvNxt) && seqLT(h.Seq, c.rcvNxt+seqMaxWnd) {
			c.teardownLocked(ErrReset)
		}
		return
	}

	// SYN-RCVD: waiting for the handshake-completing ACK.
	if c.state == StateSynRcvd {
		if h.Flags&FlagSYN != 0 { // retransmitted SYN: re-send SYN-ACK
			c.sendSynLocked()
			return
		}
		if h.Flags&FlagACK == 0 || h.Ack != c.iss+1 {
			c.ep.sendRSTLocked(c.key.rip, h, len(payload))
			return
		}
		c.state = StateEstablished
		c.sndUna = h.Ack
		c.sndWnd = uint32(h.Window)
		c.rtxDeadline = time.Time{}
		c.retries = 0
		if c.listener != nil && !c.listener.closed {
			select {
			case c.listener.backlog <- c:
			default:
				c.abortLocked()
				return
			}
		}
		c.notifyAllLocked()
		// Fall through: the ACK may carry data.
	}

	if h.Flags&FlagACK != 0 {
		c.processAckLocked(h)
		if c.state == StateClosed {
			return
		}
	}
	c.processDataLocked(h, payload)
	c.trySendLocked()
}

const seqMaxWnd = 1 << 20 // acceptance window for RST sequence checks

func (c *Conn) synSentLocked(h Header) {
	if h.Flags&FlagRST != 0 {
		if h.Flags&FlagACK != 0 && h.Ack == c.iss+1 {
			c.teardownLocked(ErrRefused)
		}
		return
	}
	if h.Flags&(FlagSYN|FlagACK) != FlagSYN|FlagACK || h.Ack != c.iss+1 {
		return // simultaneous open unsupported; ignore
	}
	c.state = StateEstablished
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	c.sndUna = h.Ack
	c.sndWnd = uint32(h.Window)
	if h.MSS != 0 && int(h.MSS) < c.mss {
		c.mss = int(h.MSS)
	}
	c.rtxDeadline = time.Time{}
	c.retries = 0
	c.rto = rtoInitial
	c.sendAckLocked()
	c.notifyAllLocked()
}

func (c *Conn) processAckLocked(h Header) {
	ack := h.Ack
	c.sndWnd = uint32(h.Window)

	if seqGT(ack, c.sndNxt) {
		// Acking data never sent: protocol violation; ack back.
		c.sendAckLocked()
		return
	}
	if seqLEQ(ack, c.sndUna) {
		// Duplicate ACK.
		if ack == c.sndUna && c.bytesInFlightLocked() > 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.ep.stats.FastRetransmits++
				// Fast recovery: halve the window, stay in congestion
				// avoidance.
				c.ssthresh = maxU32(c.bytesInFlightLocked()/2, 2*uint32(c.mss))
				c.cwnd = c.ssthresh
				c.retransmitLocked()
				c.dupAcks = 0
			}
		}
		return
	}

	// New data acknowledged.
	finSeq := c.finSeqLocked() // before sndUna moves
	advance := ack - c.sndUna
	trim := int(advance)
	if trim > len(c.sndBuf) {
		trim = len(c.sndBuf) // SYN/FIN sequence space
	}
	c.sndBuf = c.sndBuf[trim:]
	c.sndUna = ack
	c.dupAcks = 0
	c.retries = 0
	c.rto = rtoInitial
	// Congestion window growth: exponential in slow start, additive in
	// congestion avoidance.
	acked := uint32(advance)
	if c.cwnd < c.ssthresh {
		c.cwnd += minU32(acked, uint32(c.mss))
	} else if c.cwnd > 0 {
		c.cwnd += maxU32(uint32(c.mss)*uint32(c.mss)/c.cwnd, 1)
	}
	if c.cwnd > sndBufMax {
		c.cwnd = sndBufMax
	}
	if c.bytesInFlightLocked() > 0 {
		c.armRtxLocked()
	} else {
		c.rtxDeadline = time.Time{}
	}
	if c.finSent && seqGT(ack, finSeq) {
		c.finAcked = true
	}
	c.notifyAllLocked() // writers may proceed

	// FIN-acked state transitions.
	if c.finAcked {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWaitLocked()
		case StateLastAck:
			c.teardownLocked(nil)
		}
	}
}

// finSeqLocked returns the sequence number our FIN occupies.
func (c *Conn) finSeqLocked() uint32 {
	return c.sndUna + uint32(len(c.sndBuf))
}

func (c *Conn) bytesInFlightLocked() uint32 { return c.sndNxt - c.sndUna }

func (c *Conn) processDataLocked(h Header, payload []byte) {
	seg := payload
	seq := h.Seq
	hasFin := h.Flags&FlagFIN != 0

	if len(seg) == 0 && !hasFin {
		return
	}

	// Trim anything already received.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if uint32(len(seg)) <= skip {
			if !(hasFin && seq+uint32(len(seg)) == c.rcvNxt) {
				// Entirely old: dup ACK so the peer resynchronizes.
				c.sendAckLocked()
				return
			}
			seg = nil
		} else {
			seg = seg[skip:]
		}
		seq = c.rcvNxt
	}

	if seqGT(seq, c.rcvNxt) {
		// Out of order: stash for later (bounded), ack what we have.
		c.ep.stats.SegmentsReordered++
		if len(c.ooo) < maxOOOSegs && len(seg) > 0 {
			cp := make([]byte, len(seg))
			copy(cp, seg)
			c.ooo[seq] = cp
		}
		c.sendAckLocked()
		return
	}

	// In order: deliver.
	if len(seg) > 0 {
		room := rcvBufMax - len(c.rcvBuf)
		if len(seg) > room {
			seg = seg[:room] // beyond advertised window: drop excess
			hasFin = false
		}
		c.rcvBuf = append(c.rcvBuf, seg...)
		c.rcvNxt += uint32(len(seg))
		c.drainOOOLocked()
	}

	if hasFin && !c.finRcvd && seqLEQ(h.Seq+uint32(len(payload)), c.rcvNxt) {
		c.finRcvd = true
		c.rcvNxt++
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait1:
			if c.finAcked {
				c.enterTimeWaitLocked()
			} else {
				c.state = StateClosing
			}
		case StateFinWait2:
			c.enterTimeWaitLocked()
		}
	}
	c.sendAckLocked()
	c.notifyAllLocked()
}

func (c *Conn) drainOOOLocked() {
	for {
		seg, ok := c.ooo[c.rcvNxt]
		if !ok {
			// Also handle segments that start before rcvNxt now.
			found := false
			for s, data := range c.ooo {
				if seqLEQ(s, c.rcvNxt) && seqGT(s+uint32(len(data)), c.rcvNxt) {
					delete(c.ooo, s)
					c.ooo[c.rcvNxt] = data[c.rcvNxt-s:]
					found = true
					break
				}
				if seqLEQ(s+uint32(len(data)), c.rcvNxt) {
					delete(c.ooo, s)
					found = true
					break
				}
			}
			if !found {
				return
			}
			continue
		}
		delete(c.ooo, c.rcvNxt)
		room := rcvBufMax - len(c.rcvBuf)
		if len(seg) > room {
			seg = seg[:room]
		}
		c.rcvBuf = append(c.rcvBuf, seg...)
		c.rcvNxt += uint32(len(seg))
	}
}

func (c *Conn) enterTimeWaitLocked() {
	c.state = StateTimeWait
	c.timeWaitAt = c.ep.now().Add(timeWaitDur)
	c.notifyAllLocked()
}

// trySendLocked transmits as much pending data as windows allow, then a
// FIN if one is queued and the buffer drained.
func (c *Conn) trySendLocked() {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait1 && c.state != StateClosing && c.state != StateLastAck {
		return
	}
	// Effective window: the peer's advertisement capped by our
	// congestion window.
	wnd := c.sndWnd
	if wnd > c.cwnd {
		wnd = c.cwnd
	}
	if wnd > sndBufMax {
		wnd = sndBufMax
	}
	for {
		offset := int(c.sndNxt - c.sndUna)
		if c.finSent {
			break
		}
		avail := len(c.sndBuf) - offset
		if avail <= 0 {
			break
		}
		inFlight := c.bytesInFlightLocked()
		if inFlight >= wnd {
			if wnd == 0 && c.probeAt.IsZero() {
				c.probeAt = c.ep.now().Add(probeEvery)
			}
			break
		}
		n := avail
		if n > c.mss {
			n = c.mss
		}
		if space := int(wnd - inFlight); n > space {
			n = space
		}
		flags := uint8(FlagACK)
		if offset+n == len(c.sndBuf) {
			flags |= FlagPSH
		}
		c.sendSegLocked(flags, c.sndNxt, c.sndBuf[offset:offset+n], 0)
		c.sndNxt += uint32(n)
		c.armRtxLocked()
	}

	// Queue the FIN once all payload is out.
	if c.sndClosed && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sndBuf) {
		c.sendSegLocked(FlagFIN|FlagACK, c.sndNxt, nil, 0)
		c.finSent = true
		c.sndNxt++
		c.armRtxLocked()
		switch c.state {
		case StateEstablished:
			c.state = StateFinWait1
		case StateCloseWait:
			c.state = StateLastAck
		}
	}
}

// retransmitLocked resends the earliest unacknowledged segment.
func (c *Conn) retransmitLocked() {
	c.ep.stats.Retransmits++
	switch c.state {
	case StateSynSent, StateSynRcvd:
		c.sendSynLocked()
		return
	}
	offset := 0
	avail := len(c.sndBuf)
	if avail > 0 {
		n := avail
		if n > c.mss {
			n = c.mss
		}
		c.sendSegLocked(FlagACK|FlagPSH, c.sndUna, c.sndBuf[offset:offset+n], 0)
		c.armRtxLocked()
		return
	}
	if c.finSent && !c.finAcked {
		c.sendSegLocked(FlagFIN|FlagACK, c.finSeqLocked(), nil, 0)
		c.armRtxLocked()
	}
}

// tickLocked drives this connection's timers.
func (c *Conn) tickLocked(now time.Time) {
	switch c.state {
	case StateClosed:
		return
	case StateTimeWait:
		if now.After(c.timeWaitAt) {
			c.teardownLocked(nil)
		}
		return
	}

	if !c.rtxDeadline.IsZero() && now.After(c.rtxDeadline) {
		needsRtx := c.bytesInFlightLocked() > 0 || c.state == StateSynSent || c.state == StateSynRcvd
		if needsRtx {
			c.retries++
			if c.retries > maxRetries {
				c.teardownLocked(ErrGaveUp)
				return
			}
			c.rto *= 2
			if c.rto > rtoMax {
				c.rto = rtoMax
			}
			// Timeout: multiplicative decrease back to one segment.
			c.ssthresh = maxU32(c.bytesInFlightLocked()/2, 2*uint32(c.mss))
			c.cwnd = uint32(c.mss)
			c.retransmitLocked()
		} else {
			c.rtxDeadline = time.Time{}
		}
	}

	// Zero-window probe.
	if !c.probeAt.IsZero() && now.After(c.probeAt) {
		offset := int(c.sndNxt - c.sndUna)
		if c.sndWnd == 0 && offset < len(c.sndBuf) {
			c.ep.stats.ZeroWindowProbes++
			c.sendSegLocked(FlagACK|FlagPSH, c.sndNxt, c.sndBuf[offset:offset+1], 0)
			c.probeAt = now.Add(probeEvery)
		} else {
			c.probeAt = time.Time{}
			c.trySendLocked()
		}
	}
}

// --- blocking I/O ---

// Read copies received data into p, blocking until data, EOF, deadline,
// or error.
func (c *Conn) Read(p []byte) (int, error) {
	e := c.ep
	e.mu.Lock()
	for {
		if len(c.rcvBuf) > 0 {
			n := copy(p, c.rcvBuf)
			c.rcvBuf = c.rcvBuf[n:]
			// Window update if we had closed the window.
			var q []outMsg
			if c.lastAdvWnd == 0 && c.state != StateClosed {
				c.sendAckLocked()
				q = e.takePending()
			}
			e.mu.Unlock()
			e.flush(q)
			return n, nil
		}
		if c.connErr != nil {
			err := c.connErr
			e.mu.Unlock()
			return 0, err
		}
		if c.finRcvd || c.state == StateClosed || c.state == StateTimeWait {
			e.mu.Unlock()
			return 0, io.EOF
		}
		if c.closeCalled {
			e.mu.Unlock()
			return 0, ErrClosed
		}
		ch := c.notify
		deadline := c.readDeadline
		e.mu.Unlock()

		if err := waitNotify(ch, deadline); err != nil {
			return 0, err
		}
		e.mu.Lock()
	}
}

// Write queues p for transmission, blocking while the send buffer is
// full. It returns after all of p is queued (not necessarily acked).
func (c *Conn) Write(p []byte) (int, error) {
	e := c.ep
	total := 0
	e.mu.Lock()
	for len(p) > 0 {
		if c.connErr != nil {
			err := c.connErr
			e.mu.Unlock()
			return total, err
		}
		if c.closeCalled || c.sndClosed || (c.state != StateEstablished && c.state != StateCloseWait) {
			e.mu.Unlock()
			return total, ErrClosed
		}
		space := sndBufMax - len(c.sndBuf)
		if space > 0 {
			n := space
			if n > len(p) {
				n = len(p)
			}
			c.sndBuf = append(c.sndBuf, p[:n]...)
			p = p[n:]
			total += n
			c.trySendLocked()
			continue
		}
		ch := c.notify
		deadline := c.writeDeadline
		q := e.takePending()
		e.mu.Unlock()
		e.flush(q)
		if err := waitNotify(ch, deadline); err != nil {
			return total, err
		}
		e.mu.Lock()
	}
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)
	return total, nil
}

// CongestionWindow returns the current congestion window in bytes.
func (c *Conn) CongestionWindow() uint32 {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	return c.cwnd
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func waitNotify(ch <-chan struct{}, deadline time.Time) error {
	if deadline.IsZero() {
		<-ch
		return nil
	}
	d := time.Until(deadline)
	if d <= 0 {
		return ErrTimeout
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return nil
	case <-t.C:
		return ErrTimeout
	}
}

// CloseWrite half-closes the connection: FIN after pending data, reads
// still allowed (shutdown(SHUT_WR) semantics).
func (c *Conn) CloseWrite() error {
	e := c.ep
	e.mu.Lock()
	if c.state == StateEstablished || c.state == StateCloseWait || c.state == StateSynRcvd {
		c.sndClosed = true
		c.trySendLocked()
	}
	c.notifyAllLocked()
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)
	return nil
}

// Close sends FIN after pending data and marks the connection closed for
// further Reads and Writes. It does not wait for the peer.
func (c *Conn) Close() error {
	e := c.ep
	e.mu.Lock()
	if c.closeCalled {
		e.mu.Unlock()
		return nil
	}
	c.closeCalled = true
	if c.state == StateEstablished || c.state == StateCloseWait || c.state == StateSynRcvd {
		c.sndClosed = true
		c.trySendLocked()
	} else if c.state == StateSynSent {
		c.teardownLocked(ErrClosed)
	}
	c.notifyAllLocked()
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)
	return nil
}
