// Package tcp implements the Transmission Control Protocol for the
// in-TEE network stack: connection establishment and teardown,
// cumulative acknowledgment, retransmission with exponential backoff,
// fast retransmit, out-of-order reassembly, flow control with zero-window
// probing, and RST handling.
//
// This is the largest component the paper's L2 designs pull into the
// confidential TCB — the package's line count feeds the TCB accounting
// that positions designs in Figure 5. Placing the boundary at L5 moves
// this entire package (plus ipv4, ether, arp, udp and the driver) out of
// the core TCB; the dual-boundary design moves it into the I/O
// compartment instead.
package tcp

import (
	"errors"
	"fmt"

	"confio/internal/ipv4"
)

// Header flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// headerLen is the fixed header size without options.
const headerLen = 20

// Header is a parsed TCP header. Only the MSS option is understood; all
// others are skipped on parse and never emitted.
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	// MSS is the maximum-segment-size option (0 when absent).
	MSS uint16
}

// ErrMalformed reports an unusable segment.
var ErrMalformed = errors.New("tcp: malformed segment")

// ErrChecksum reports a segment checksum failure.
var ErrChecksum = errors.New("tcp: bad checksum")

// Parse decodes and verifies a TCP segment carried between src and dst,
// returning the header and payload (aliasing buf).
func Parse(src, dst ipv4.Addr, buf []byte) (Header, []byte, error) {
	if len(buf) < headerLen {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(buf))
	}
	if ipv4.TransportChecksum(src, dst, ipv4.ProtoTCP, buf) != 0 {
		return Header{}, nil, ErrChecksum
	}
	dataOff := int(buf[12]>>4) * 4
	if dataOff < headerLen || dataOff > len(buf) {
		return Header{}, nil, fmt.Errorf("%w: data offset %d", ErrMalformed, dataOff)
	}
	var h Header
	h.SrcPort = uint16(buf[0])<<8 | uint16(buf[1])
	h.DstPort = uint16(buf[2])<<8 | uint16(buf[3])
	h.Seq = be32(buf[4:])
	h.Ack = be32(buf[8:])
	h.Flags = buf[13] & 0x1F
	h.Window = uint16(buf[14])<<8 | uint16(buf[15])

	// Scan options for MSS.
	opts := buf[headerLen:dataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // nop
			opts = opts[1:]
		case 2: // MSS
			if len(opts) < 4 || opts[1] != 4 {
				return Header{}, nil, fmt.Errorf("%w: bad MSS option", ErrMalformed)
			}
			h.MSS = uint16(opts[2])<<8 | uint16(opts[3])
			opts = opts[4:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return Header{}, nil, fmt.Errorf("%w: bad option", ErrMalformed)
			}
			opts = opts[opts[1]:]
		}
	}
	return h, buf[dataOff:], nil
}

// Marshal appends an encoded segment (with checksum) to dst.
func Marshal(dst []byte, src, dstIP ipv4.Addr, h Header, payload []byte) []byte {
	optLen := 0
	if h.MSS != 0 {
		optLen = 4
	}
	dataOff := headerLen + optLen
	start := len(dst)
	dst = append(dst,
		byte(h.SrcPort>>8), byte(h.SrcPort),
		byte(h.DstPort>>8), byte(h.DstPort),
		byte(h.Seq>>24), byte(h.Seq>>16), byte(h.Seq>>8), byte(h.Seq),
		byte(h.Ack>>24), byte(h.Ack>>16), byte(h.Ack>>8), byte(h.Ack),
		byte(dataOff/4)<<4, h.Flags,
		byte(h.Window>>8), byte(h.Window),
		0, 0, // checksum
		0, 0, // urgent
	)
	if h.MSS != 0 {
		dst = append(dst, 2, 4, byte(h.MSS>>8), byte(h.MSS))
	}
	dst = append(dst, payload...)
	ck := ipv4.TransportChecksum(src, dstIP, ipv4.ProtoTCP, dst[start:])
	dst[start+16] = byte(ck >> 8)
	dst[start+17] = byte(ck)
	return dst
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Sequence-space arithmetic (RFC 793 comparisons, wraparound safe).

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
