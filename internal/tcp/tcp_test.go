package tcp

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"confio/internal/ipv4"
)

var (
	ipA = ipv4.Addr{10, 0, 0, 1}
	ipB = ipv4.Addr{10, 0, 0, 2}
)

// testNet wires two endpoints through an asynchronous pipe with optional
// per-direction segment filters (drop / duplicate / reorder).
type testNet struct {
	a, b *Endpoint

	mu      sync.Mutex
	qAB     [][]byte
	qBA     [][]byte
	filtAB  func(seg []byte) [][]byte // nil = pass through
	filtBA  func(seg []byte) [][]byte
	stopped chan struct{}
	wg      sync.WaitGroup
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	n := &testNet{stopped: make(chan struct{})}
	n.a = NewEndpoint(ipA, 1500, func(dst ipv4.Addr, seg []byte) {
		n.enqueue(&n.qAB, n.filterAB(seg))
	}, nil)
	n.b = NewEndpoint(ipB, 1500, func(dst ipv4.Addr, seg []byte) {
		n.enqueue(&n.qBA, n.filterBA(seg))
	}, nil)
	n.wg.Add(1)
	go n.pump()
	t.Cleanup(n.stop)
	return n
}

func (n *testNet) filterAB(seg []byte) [][]byte {
	n.mu.Lock()
	f := n.filtAB
	n.mu.Unlock()
	cp := append([]byte{}, seg...)
	if f == nil {
		return [][]byte{cp}
	}
	return f(cp)
}

func (n *testNet) filterBA(seg []byte) [][]byte {
	n.mu.Lock()
	f := n.filtBA
	n.mu.Unlock()
	cp := append([]byte{}, seg...)
	if f == nil {
		return [][]byte{cp}
	}
	return f(cp)
}

func (n *testNet) enqueue(q *[][]byte, segs [][]byte) {
	n.mu.Lock()
	*q = append(*q, segs...)
	n.mu.Unlock()
}

func (n *testNet) pump() {
	defer n.wg.Done()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-n.stopped:
			return
		case <-tick.C:
		}
		for {
			n.mu.Lock()
			var seg []byte
			var to *Endpoint
			var from ipv4.Addr
			if len(n.qAB) > 0 {
				seg, n.qAB = n.qAB[0], n.qAB[1:]
				to, from = n.b, ipA
			} else if len(n.qBA) > 0 {
				seg, n.qBA = n.qBA[0], n.qBA[1:]
				to, from = n.a, ipB
			}
			n.mu.Unlock()
			if seg == nil {
				break
			}
			to.Input(from, seg)
		}
		n.a.Tick()
		n.b.Tick()
	}
}

func (n *testNet) stop() {
	select {
	case <-n.stopped:
	default:
		close(n.stopped)
	}
	n.wg.Wait()
}

// connect establishes a client(A)->server(B) pair.
func (n *testNet) connect(t *testing.T, port uint16) (client, server *Conn) {
	t.Helper()
	l, err := n.b.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	c, err := n.a.Dial(ipB, port, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.AcceptTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{SrcPort: 80, DstPort: 45000, Seq: 0xDEADBEEF, Ack: 0xCAFEBABE,
		Flags: FlagSYN | FlagACK, Window: 4096, MSS: 1460}
	payload := []byte("segment data")
	buf := Marshal(nil, ipA, ipB, h, payload)
	got, pl, err := Parse(ipA, ipB, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestHeaderChecksumDetectsCorruption(t *testing.T) {
	buf := Marshal(nil, ipA, ipB, Header{SrcPort: 1, DstPort: 2, Flags: FlagACK}, []byte("xy"))
	buf[len(buf)-1] ^= 1
	if _, _, err := Parse(ipA, ipB, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corruption: %v", err)
	}
	// Wrong pseudo header (a different address, not a symmetric swap —
	// the one's-complement sum is commutative in src/dst).
	good := Marshal(nil, ipA, ipB, Header{SrcPort: 1, DstPort: 2, Flags: FlagACK}, nil)
	if _, _, err := Parse(ipA, ipv4.Addr{9, 9, 9, 9}, good); !errors.Is(err, ErrChecksum) {
		t.Fatalf("pseudo header: %v", err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xFFFFFFF0, 0x10) {
		t.Fatal("wraparound LT")
	}
	if !seqGT(0x10, 0xFFFFFFF0) {
		t.Fatal("wraparound GT")
	}
	if !seqLEQ(5, 5) || !seqGEQ(5, 5) {
		t.Fatal("equality")
	}
	if seqMax(0xFFFFFFF0, 0x10) != 0x10 {
		t.Fatal("seqMax")
	}
}

func TestHandshakeAndStates(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	if c.State() != StateEstablished || s.State() != StateEstablished {
		t.Fatalf("states: %v / %v", c.State(), s.State())
	}
	if c.RemoteIP() != ipB || c.RemotePort() != 8080 {
		t.Fatal("client addressing wrong")
	}
	if s.RemoteIP() != ipA || s.RemotePort() != c.LocalPort() {
		t.Fatal("server addressing wrong")
	}
}

func TestDataTransfer(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	msg := []byte("hello over the confidential stack")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(&connReader{s}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}

	// And the other direction.
	reply := []byte("reply")
	if _, err := s.Write(reply); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(reply))
	if _, err := io.ReadFull(&connReader{c}, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, reply) {
		t.Fatalf("got %q", got2)
	}
}

// connReader adapts Conn to io.Reader for io.ReadFull.
type connReader struct{ c *Conn }

func (r *connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

func TestLargeTransfer(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	data := make([]byte, 1<<20) // 1 MiB: many windows, many segments
	for i := range data {
		data[i] = byte(i * 31)
	}
	go func() {
		c.Write(data)
		c.Close()
	}()
	got, err := io.ReadAll(&connReader{s})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("1 MiB transfer corrupted (%d bytes)", len(got))
	}
}

func TestCloseHandshake(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	if _, err := c.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nn, err := s.Read(buf)
	if err != nil || string(buf[:nn]) != "bye" {
		t.Fatalf("read: %q %v", buf[:nn], err)
	}
	if _, err := s.Read(buf); err != io.EOF {
		t.Fatalf("want EOF after FIN, got %v", err)
	}
	// Server can still send until it closes (half close).
	if _, err := s.Write([]byte("final")); err != nil {
		t.Fatal(err)
	}
	nn, err = c.Read(buf)
	if err != nil || string(buf[:nn]) != "final" {
		t.Fatalf("half-close read: %q %v", buf[:nn], err)
	}
	s.Close()
	waitState(t, c, StateTimeWait, StateClosed)
	waitGone(t, n.b, s)
}

func waitState(t *testing.T, c *Conn, want ...State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := c.State()
		for _, w := range want {
			if st == w {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("conn stuck in %v, want %v", c.State(), want)
}

func waitGone(t *testing.T, e *Endpoint, c *Conn) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		e.mu.Lock()
		_, ok := e.conns[c.key]
		e.mu.Unlock()
		if !ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("connection never cleaned up")
}

func TestConnectionRefused(t *testing.T) {
	n := newTestNet(t)
	if _, err := n.a.Dial(ipB, 9999, 2*time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
}

func TestDialTimeoutWhenPeerSilent(t *testing.T) {
	n := newTestNet(t)
	// Drop all SYNs toward B.
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte { return nil }
	n.mu.Unlock()
	start := time.Now()
	if _, err := n.a.Dial(ipB, 80, 300*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout too slow")
	}
}

func TestRetransmissionThroughLoss(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	// Drop every 4th data segment A->B.
	var count int
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte {
		count++
		if count%4 == 0 {
			return nil
		}
		return [][]byte{seg}
	}
	n.mu.Unlock()

	data := make([]byte, 200<<10)
	for i := range data {
		data[i] = byte(i)
	}
	go func() {
		c.Write(data)
		c.Close()
	}()
	got, err := io.ReadAll(&connReader{s})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("lossy transfer corrupted")
	}
	if n.a.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions recorded despite loss")
	}
}

func TestReorderAndDuplication(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	var held [][]byte
	var count int
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte {
		count++
		switch {
		case count%5 == 0: // hold back for reordering
			held = append(held, seg)
			return nil
		case count%7 == 0: // duplicate
			return [][]byte{seg, append([]byte{}, seg...)}
		case len(held) > 0:
			out := append([][]byte{seg}, held...)
			held = nil
			return out
		default:
			return [][]byte{seg}
		}
	}
	n.mu.Unlock()

	data := make([]byte, 100<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	go func() {
		c.Write(data)
		c.Close()
	}()
	got, err := io.ReadAll(&connReader{s})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reordered/duplicated transfer corrupted")
	}
}

func TestCorruptedSegmentsDropped(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	var count int
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte {
		count++
		if count%3 == 0 {
			seg[len(seg)/2] ^= 0xFF // bit corruption
		}
		return [][]byte{seg}
	}
	n.mu.Unlock()

	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 7)
	}
	go func() {
		c.Write(data)
		c.Close()
	}()
	got, err := io.ReadAll(&connReader{s})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corruption leaked through checksum")
	}
	if n.b.Stats().ChecksumDrops == 0 {
		t.Fatal("no checksum drops recorded")
	}
}

func TestGiveUpAfterMaxRetries(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	_ = s
	// Black-hole everything A->B after establishment.
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte { return nil }
	n.mu.Unlock()
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if errors.Is(c.Err(), ErrGaveUp) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sender never gave up: state %v err %v", c.State(), c.Err())
}

func TestRSTTearsDownConnection(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	s.Abort() // sends RST
	buf := make([]byte, 8)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Read(buf); errors.Is(err, ErrReset) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("client never saw RST: state %v err %v", c.State(), c.Err())
}

func TestZeroWindowAndProbe(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	// Fill the receiver completely (it never reads).
	data := make([]byte, rcvBufMax+4096)
	go c.Write(data)

	// Wait for the receiver's buffer to fill and the window to close.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n.b.mu.Lock()
		full := len(s.rcvBuf) >= rcvBufMax
		n.b.mu.Unlock()
		if full {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Now drain; the probe must reopen the flow and deliver everything.
	got := 0
	buf := make([]byte, 32<<10)
	for got < len(data) {
		s.SetReadDeadline(time.Now().Add(10 * time.Second))
		nn, err := s.Read(buf)
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got, err)
		}
		got += nn
	}
	if n.a.Stats().ZeroWindowProbes == 0 {
		t.Log("note: window reopened before probing was needed")
	}
}

func TestReadWriteDeadlines(t *testing.T) {
	n := newTestNet(t)
	c, _ := n.connect(t, 8080)
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := c.Read(make([]byte, 8)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("read deadline: %v", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := newTestNet(t)
	c, _ := n.connect(t, 8080)
	c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestListenerBacklogAndClose(t *testing.T) {
	n := newTestNet(t)
	l, err := n.b.Listen(80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Port() != 80 {
		t.Fatal("port")
	}
	if _, err := n.b.Listen(80, 2); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("duplicate listen: %v", err)
	}
	c, err := n.a.Dial(ipB, 80, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.AcceptTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	l.Close()
	l.Close() // idempotent
	if _, err := l.Accept(); !errors.Is(err, ErrListenerClosed) {
		t.Fatalf("accept after close: %v", err)
	}
	// New dials are refused once the listener is gone.
	if _, err := n.a.Dial(ipB, 80, 2*time.Second); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
	_ = c
}

func TestManyConcurrentConnections(t *testing.T) {
	n := newTestNet(t)
	l, err := n.b.Listen(443, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const conns = 16
	var wg sync.WaitGroup
	errs := make(chan error, conns*2)

	wg.Add(1)
	go func() { // server
		defer wg.Done()
		for i := 0; i < conns; i++ {
			s, err := l.AcceptTimeout(10 * time.Second)
			if err != nil {
				errs <- err
				return
			}
			wg.Add(1)
			go func(s *Conn) { // echo
				defer wg.Done()
				buf := make([]byte, 1024)
				for {
					nn, err := s.Read(buf)
					if err != nil {
						s.Close()
						return
					}
					if _, err := s.Write(buf[:nn]); err != nil {
						return
					}
				}
			}(s)
		}
	}()

	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.a.Dial(ipB, 443, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			msg := bytes.Repeat([]byte{byte(i)}, 512)
			if _, err := c.Write(msg); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(msg))
			c.SetReadDeadline(time.Now().Add(10 * time.Second))
			if _, err := io.ReadFull(&connReader{c}, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- errors.New("echo mismatch")
				return
			}
			c.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	c.Write([]byte("data"))
	buf := make([]byte, 8)
	s.Read(buf)
	st := n.a.Stats()
	if st.SegsOut == 0 || st.SegsIn == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}
