package tcp

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestTortureAllImpairmentsAtOnce runs a sizeable transfer through a
// pipe that simultaneously drops, duplicates, reorders and corrupts —
// the worst network the transport must still deliver exactly-once,
// in-order bytes through.
func TestTortureAllImpairmentsAtOnce(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	var count int
	var held [][]byte
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte {
		count++
		switch {
		case count%11 == 0:
			return nil // drop
		case count%7 == 0:
			seg[len(seg)-1] ^= 0xFF // corrupt (checksum will drop it)
			return [][]byte{seg}
		case count%5 == 0:
			held = append(held, seg) // hold for reorder
			return nil
		case count%3 == 0:
			out := [][]byte{seg, append([]byte{}, seg...)} // duplicate
			out = append(out, held...)
			held = nil
			return out
		default:
			out := append([][]byte{seg}, held...)
			held = nil
			return out
		}
	}
	n.mu.Unlock()

	data := make([]byte, 160<<10)
	for i := range data {
		data[i] = byte(i * 17)
	}
	go func() {
		c.Write(data)
		c.Close()
	}()
	got, err := io.ReadAll(&connReader{s})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("torture transfer corrupted (%d bytes)", len(got))
	}
	st := n.a.Stats()
	if st.Retransmits == 0 {
		t.Error("no retransmissions under torture?")
	}
	if n.b.Stats().ChecksumDrops == 0 {
		t.Error("no checksum drops under torture?")
	}
}

// TestSimultaneousClose exercises both sides closing at once (the
// CLOSING state path).
func TestSimultaneousClose(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	c.Close()
	s.Close()
	waitState(t, c, StateTimeWait, StateClosed)
	waitState(t, s, StateTimeWait, StateClosed)
	waitGone(t, n.a, c)
	waitGone(t, n.b, s)
}

// TestInterleavedBidirectionalStreams pushes data both ways on one
// connection concurrently.
func TestInterleavedBidirectionalStreams(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)

	a2b := make([]byte, 64<<10)
	b2a := make([]byte, 64<<10)
	for i := range a2b {
		a2b[i] = byte(i * 3)
		b2a[i] = byte(i * 5)
	}
	errc := make(chan error, 2)
	go func() {
		_, err := c.Write(a2b)
		c.CloseWrite()
		errc <- err
	}()
	go func() {
		_, err := s.Write(b2a)
		s.CloseWrite()
		errc <- err
	}()

	gotA := make(chan []byte, 1)
	gotB := make(chan []byte, 1)
	go func() {
		d, _ := io.ReadAll(&connReader{s})
		gotB <- d
	}()
	go func() {
		d, _ := io.ReadAll(&connReader{c})
		gotA <- d
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	select {
	case d := <-gotB:
		if !bytes.Equal(d, a2b) {
			t.Fatal("a->b stream corrupted")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("a->b timed out")
	}
	select {
	case d := <-gotA:
		if !bytes.Equal(d, b2a) {
			t.Fatal("b->a stream corrupted")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("b->a timed out")
	}
}

// TestCongestionWindowDynamics: the window grows during a clean transfer
// and collapses on loss.
func TestCongestionWindowDynamics(t *testing.T) {
	n := newTestNet(t)
	c, s := n.connect(t, 8080)
	initial := c.CongestionWindow()

	// Clean transfer: slow start should grow the window.
	data := make([]byte, 256<<10)
	go func() {
		c.Write(data)
	}()
	drained := 0
	buf := make([]byte, 32<<10)
	for drained < len(data) {
		s.SetReadDeadline(time.Now().Add(10 * time.Second))
		nn, err := s.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		drained += nn
	}
	grown := c.CongestionWindow()
	if grown <= initial {
		t.Fatalf("cwnd did not grow: %d -> %d", initial, grown)
	}

	// Black-hole one stretch of segments: the RTO must collapse cwnd.
	var count int
	n.mu.Lock()
	n.filtAB = func(seg []byte) [][]byte {
		count++
		if count < 20 {
			return nil
		}
		return [][]byte{seg}
	}
	n.mu.Unlock()
	go c.Write(data[:64<<10])
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if c.CongestionWindow() < grown {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cwnd never collapsed under loss: %d", c.CongestionWindow())
}
