package tcp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"confio/internal/ipv4"
)

// Tunables. The timers are scaled for a simulated network whose RTT is
// microseconds; the protocol logic is identical to wall-clock TCP.
const (
	defaultMSS  = 1460
	sndBufMax   = 256 << 10
	rcvBufMax   = 256 << 10
	rtoInitial  = 50 * time.Millisecond
	rtoMax      = 2 * time.Second
	maxRetries  = 10
	timeWaitDur = 250 * time.Millisecond
	probeEvery  = 20 * time.Millisecond
	maxOOOSegs  = 128
)

// Endpoint errors.
var (
	ErrRefused        = errors.New("tcp: connection refused")
	ErrReset          = errors.New("tcp: connection reset by peer")
	ErrTimeout        = errors.New("tcp: operation timed out")
	ErrClosed         = errors.New("tcp: connection closed")
	ErrListenerClosed = errors.New("tcp: listener closed")
	ErrPortInUse      = errors.New("tcp: port in use")
	ErrGaveUp         = errors.New("tcp: retransmission limit reached")
)

// Stats counts endpoint-wide protocol events.
type Stats struct {
	SegsIn, SegsOut   uint64
	Retransmits       uint64
	RSTsSent, RSTsIn  uint64
	ChecksumDrops     uint64
	OutOfWindowDrops  uint64
	FastRetransmits   uint64
	ZeroWindowProbes  uint64
	SegmentsReordered uint64
}

type connKey struct {
	rip   ipv4.Addr
	rport uint16
	lport uint16
}

type outMsg struct {
	dst ipv4.Addr
	seg []byte
}

// Endpoint is one host's TCP layer. Segments leave through the output
// callback (toward the IP layer) and enter through Input. Tick drives
// timers; the owning stack calls it periodically.
type Endpoint struct {
	ip     ipv4.Addr
	mss    int
	output func(dst ipv4.Addr, seg []byte)
	now    func() time.Time

	mu        sync.Mutex
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	eph       uint16
	isn       uint32
	stats     Stats
	pending   []outMsg
}

// NewEndpoint creates a TCP endpoint for ip. mtu bounds the MSS; clock
// may be nil (wall clock).
func NewEndpoint(ip ipv4.Addr, mtu int, output func(dst ipv4.Addr, seg []byte), clock func() time.Time) *Endpoint {
	if clock == nil {
		clock = time.Now
	}
	mss := mtu - ipv4.HeaderLen - headerLen
	if mss > defaultMSS {
		mss = defaultMSS
	}
	return &Endpoint{
		ip:        ip,
		mss:       mss,
		output:    output,
		now:       clock,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		eph:       32768 + uint16(rand.Intn(16384)),
		isn:       rand.Uint32(),
	}
}

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// emit queues a segment for transmission after the lock is released.
func (e *Endpoint) emit(dst ipv4.Addr, seg []byte) {
	e.stats.SegsOut++
	e.pending = append(e.pending, outMsg{dst: dst, seg: seg})
}

// flush sends queued segments; must be called WITHOUT the lock held.
func (e *Endpoint) flush(q []outMsg) {
	for _, m := range q {
		e.output(m.dst, m.seg)
	}
}

func (e *Endpoint) takePending() []outMsg {
	q := e.pending
	e.pending = nil
	return q
}

// Input processes one TCP segment received from src.
func (e *Endpoint) Input(src ipv4.Addr, seg []byte) {
	e.mu.Lock()
	e.inputLocked(src, seg)
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)
}

func (e *Endpoint) inputLocked(src ipv4.Addr, seg []byte) {
	h, payload, err := Parse(src, e.ip, seg)
	if err != nil {
		e.stats.ChecksumDrops++
		return
	}
	e.stats.SegsIn++
	if h.Flags&FlagRST != 0 {
		e.stats.RSTsIn++
	}

	key := connKey{rip: src, rport: h.SrcPort, lport: h.DstPort}
	if c, ok := e.conns[key]; ok {
		c.segmentLocked(h, payload)
		return
	}
	if l, ok := e.listeners[h.DstPort]; ok && h.Flags&FlagSYN != 0 && h.Flags&FlagACK == 0 {
		l.synLocked(src, h)
		return
	}
	// No home for this segment: RST (unless it is itself a RST).
	if h.Flags&FlagRST == 0 {
		e.sendRSTLocked(src, h, len(payload))
	}
}

func (e *Endpoint) sendRSTLocked(dst ipv4.Addr, h Header, payloadLen int) {
	e.stats.RSTsSent++
	ackAdj := uint32(payloadLen)
	if h.Flags&FlagSYN != 0 {
		ackAdj++
	}
	if h.Flags&FlagFIN != 0 {
		ackAdj++
	}
	rst := Header{
		SrcPort: h.DstPort, DstPort: h.SrcPort,
		Flags: FlagRST | FlagACK,
		Seq:   h.Ack, Ack: h.Seq + ackAdj,
	}
	e.emit(dst, Marshal(nil, e.ip, dst, rst, nil))
}

// Tick advances timers (retransmission, zero-window probes, TIME-WAIT
// expiry). The stack calls it every few milliseconds.
func (e *Endpoint) Tick() {
	e.mu.Lock()
	now := e.now()
	for _, c := range e.conns {
		c.tickLocked(now)
	}
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)
}

// AbortAll tears down every connection and listener with err: the
// transport under the stack died (fail-dead or declared host stall), so
// no segment can ever be delivered or acknowledged again. Blocked
// readers and writers wake with err, blocked Accepts return, and
// in-flight send buffers are abandoned — TCP cannot out-retransmit a
// dead NIC. No RSTs are emitted because there is no transport left to
// carry them; the queued segment backlog is discarded for the same
// reason.
func (e *Endpoint) AbortAll(err error) {
	if err == nil {
		err = ErrClosed
	}
	e.mu.Lock()
	conns := make([]*Conn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	for _, c := range conns {
		c.teardownLocked(err)
	}
	for port, l := range e.listeners {
		l.closed = true
		delete(e.listeners, port)
		close(l.backlog)
		for c := range drainBacklog(l.backlog) {
			c.teardownLocked(err)
		}
	}
	e.pending = nil
	e.mu.Unlock()
}

func (e *Endpoint) nextISNLocked() uint32 {
	e.isn += 0x3779 + uint32(rand.Intn(1<<16))
	return e.isn
}

func (e *Endpoint) allocPortLocked() (uint16, error) {
	for i := 0; i < 1<<15; i++ {
		p := e.eph
		e.eph++
		if e.eph < 32768 {
			e.eph = 32768
		}
		if _, used := e.listeners[p]; used {
			continue
		}
		inUse := false
		for k := range e.conns {
			if k.lport == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p, nil
		}
	}
	return 0, errors.New("tcp: ephemeral ports exhausted")
}

// Dial opens a connection to dst:port, blocking until established,
// refused, reset, or timeout (timeout<=0 means 5s).
func (e *Endpoint) Dial(dst ipv4.Addr, port uint16, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	e.mu.Lock()
	lport, err := e.allocPortLocked()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	c := newConn(e, connKey{rip: dst, rport: port, lport: lport})
	c.state = StateSynSent
	c.iss = e.nextISNLocked()
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	e.conns[c.key] = c
	c.sendSynLocked()
	ch := c.notify
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)

	deadline := time.After(timeout)
	for {
		select {
		case <-ch:
		case <-deadline:
			e.mu.Lock()
			established := c.state == StateEstablished
			if !established {
				c.teardownLocked(ErrTimeout)
			}
			q := e.takePending()
			e.mu.Unlock()
			e.flush(q)
			if established {
				return c, nil
			}
			return nil, ErrTimeout
		}
		e.mu.Lock()
		st, cerr := c.state, c.connErr
		ch = c.notify
		e.mu.Unlock()
		if st == StateEstablished {
			return c, nil
		}
		if cerr != nil {
			return nil, cerr
		}
	}
}

// Listener accepts inbound connections on a port.
type Listener struct {
	e       *Endpoint
	port    uint16
	backlog chan *Conn
	closed  bool
}

// Listen starts accepting connections on port.
func (e *Endpoint) Listen(port uint16, backlog int) (*Listener, error) {
	if backlog <= 0 {
		backlog = 16
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, used := e.listeners[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{e: e, port: port, backlog: make(chan *Conn, backlog)}
	e.listeners[port] = l
	return l, nil
}

// synLocked handles an inbound SYN for this listener.
func (l *Listener) synLocked(src ipv4.Addr, h Header) {
	if l.closed || len(l.backlog) == cap(l.backlog) {
		return // silently drop; client retransmits
	}
	e := l.e
	key := connKey{rip: src, rport: h.SrcPort, lport: l.port}
	c := newConn(e, key)
	c.state = StateSynRcvd
	c.listener = l
	c.iss = e.nextISNLocked()
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.irs = h.Seq
	c.rcvNxt = h.Seq + 1
	if h.MSS != 0 && int(h.MSS) < c.mss {
		c.mss = int(h.MSS)
	}
	c.sndWnd = uint32(h.Window)
	e.conns[key] = c
	c.sendSynLocked() // SYN-ACK (state-dependent)
}

// Accept returns the next established connection, blocking until one
// arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrListenerClosed
	}
	return c, nil
}

// AcceptTimeout is Accept with a deadline.
func (l *Listener) AcceptTimeout(d time.Duration) (*Conn, error) {
	select {
	case c, ok := <-l.backlog:
		if !ok {
			return nil, ErrListenerClosed
		}
		return c, nil
	case <-time.After(d):
		return nil, ErrTimeout
	}
}

// Close stops accepting. Established-but-unaccepted connections are
// aborted.
func (l *Listener) Close() {
	e := l.e
	e.mu.Lock()
	if l.closed {
		e.mu.Unlock()
		return
	}
	l.closed = true
	delete(e.listeners, l.port)
	close(l.backlog)
	for c := range drainBacklog(l.backlog) {
		c.abortLocked()
	}
	q := e.takePending()
	e.mu.Unlock()
	e.flush(q)
}

func drainBacklog(ch chan *Conn) map[*Conn]bool {
	out := map[*Conn]bool{}
	for c := range ch {
		out[c] = true
	}
	return out
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }
