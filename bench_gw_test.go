package confio_test

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"confio/internal/gateway"
)

// --- Multi-tenant gateway: fairness under a flooding neighbor ---
//
// The gateway's robustness claim is not only that a hostile tenant gets
// contained (the chaos and attack suites prove that) but that a merely
// *greedy* one cannot starve its neighbors: per-tenant compartments,
// per-tenant metering and the shared multi-queue ring should keep a
// well-behaved tenant's latency and throughput stable while a neighbor
// pushes as hard as it can. Rows:
//
//   - EchoFair: three tenants, two measured, nobody misbehaving — the
//     baseline round-trip cost through hello routing, the per-tenant
//     ctls channel, the gate-crossing relay and back.
//   - EchoUnderFlood: identical, except tenant 1 continuously streams
//     4 KiB echoes from a separate flow for the whole measured run.
//
// `make bench-gw` lands the stream in BENCH_gateway.json; the figure of
// merit is the delta between the two rows — MB/s and p99-us of the
// measured tenants should move only modestly, and p99-spread (worst
// measured-tenant p99 over best) should stay near 1 (EXPERIMENTS.md).

func benchGWEcho(b *testing.B, flood bool) {
	n, err := gateway.NewNode(gateway.DefaultNodeConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()

	dial := func(id gateway.TenantID) io.ReadWriteCloser {
		c, err := n.DialTenant(id)
		if err != nil {
			b.Fatalf("tenant %v dial: %v", id, err)
		}
		return c
	}
	c2, c3 := dial(2), dial(3)
	defer c2.Close()
	defer c3.Close()

	echo := func(c io.ReadWriteCloser, payload, resp []byte) error {
		if _, err := c.Write(payload); err != nil {
			return err
		}
		_, err := io.ReadFull(c, resp)
		return err
	}

	var stop chan struct{}
	var wg sync.WaitGroup
	if flood {
		cf := dial(1)
		defer cf.Close()
		stop = make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := bytes.Repeat([]byte{0xF1}, 4096)
			resp := make([]byte, len(payload))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := echo(cf, payload, resp); err != nil {
					return
				}
			}
		}()
	}

	payload := bytes.Repeat([]byte{0x42}, 256)
	resp := make([]byte, len(payload))
	// Two measured tenants, both directions, per iteration.
	b.SetBytes(int64(2 * 2 * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := echo(c2, payload, resp); err != nil {
			b.Fatal(err)
		}
		if err := echo(c3, payload, resp); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if flood {
		close(stop)
		wg.Wait()
	}

	for _, id := range []gateway.TenantID{2, 3} {
		if c := n.Tb.Tenant(uint64(id)); c.Drops != 0 || c.Evictions != 0 {
			b.Fatalf("measured tenant %v charged under load: %s", id, c)
		}
	}
	l2, l3 := n.Tb.TenantLatency(2), n.Tb.TenantLatency(3)
	worst, best := l2.P99, l3.P99
	if worst < best {
		worst, best = best, worst
	}
	b.ReportMetric(float64(worst)/1e3, "p99-us")
	if best > 0 {
		b.ReportMetric(float64(worst)/float64(best), "p99-spread")
	}
	if flood {
		b.ReportMetric(float64(n.Tb.Tenant(1).Frames), "flood-frames")
	}
}

func BenchmarkGW_EchoFair(b *testing.B)       { benchGWEcho(b, false) }
func BenchmarkGW_EchoUnderFlood(b *testing.B) { benchGWEcho(b, true) }
