// Command ciobench reproduces Figure 5 and the performance tables: it
// runs the echo and bulk workloads over every confidential I/O design
// and prints, per design, the measured throughput and latency, the
// modelled per-operation cost (boundary events weighted with the
// platform calibration), the TCB class, and the observability class —
// the three axes of the paper's design-space figure.
//
// Usage:
//
//	ciobench                 # Figure 5 table, default workload sizes
//	ciobench -echo 200 -size 256 -bulk 4
//	ciobench -design dual-boundary -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"confio/internal/core"
	"confio/internal/platform"
	"confio/internal/stio"
)

func main() {
	echoN := flag.Int("echo", 200, "echo round trips per design")
	echoSize := flag.Int("size", 256, "echo request size in bytes")
	bulkMB := flag.Int("bulk", 4, "bulk transfer size in MiB")
	only := flag.String("design", "", "run a single design (comma-separated ids)")
	verbose := flag.Bool("v", false, "print raw cost counters")
	storage := flag.Bool("storage", false, "run the §3.3 storage designs instead")
	sweep := flag.Bool("sweep", false, "sweep request sizes to locate design crossovers")
	flag.Parse()

	if *storage {
		runStorage(*verbose)
		return
	}
	if *sweep {
		runSweep()
		return
	}

	designs := core.Designs()
	if *only != "" {
		designs = nil
		for _, s := range strings.Split(*only, ",") {
			designs = append(designs, core.DesignID(strings.TrimSpace(s)))
		}
	}

	params := platform.DefaultCostParams()
	fmt.Println("== Figure 5: confidentiality (TCB, observability) vs performance ==")
	fmt.Printf("workloads: echo %d x %dB round trips; bulk %d MiB stream\n", *echoN, *echoSize, *bulkMB)
	fmt.Printf("model calibration: TEE crossing %.0fns, gate %.0fns, copy %.2fns/B, crypto %.2fns/B\n\n",
		params.TEECrossNs, params.GateCrossNs, params.CopyByteNs, params.CryptoNs)

	fmt.Printf("%-20s %-7s %-5s %9s %9s %9s %11s %12s\n",
		"design", "coreTCB", "obs", "p50(us)", "p99(us)", "Gbit/s", "model/op", "model(bulk)")

	for _, id := range designs {
		if err := runDesign(id, *echoN, *echoSize, int64(*bulkMB)<<20, params, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}

	fmt.Println("\nexpected shape (paper): host-socket = smallest TCB, worst observability &")
	fmt.Println("latency; L2 designs = fast but stack-sized TCB; tunnel = lowest observability,")
	fmt.Println("largest TCB, crypto-bound; dual-boundary = small core TCB, network-equivalent")
	fmt.Println("observability, performance within a gate-crossing of the raw safe ring.")
}

// runSweep prints modelled cost per echo round trip as request size
// grows, for the four designs whose relative order the paper reasons
// about. Crossing-dominated designs flatten out; byte-cost-dominated
// designs grow linearly — the crossover structure of the design space.
func runSweep() {
	params := platform.DefaultCostParams()
	sizes := []int{64, 256, 1024, 4096, 15000}
	designs := []core.DesignID{core.HostSocket, core.L2SafeRing, core.Tunnel, core.DualBoundary}

	fmt.Println("== request-size sweep: model µs per echo round trip ==")
	fmt.Printf("%-10s", "size")
	for _, id := range designs {
		fmt.Printf(" %16s", id)
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%-10d", size)
		for _, id := range designs {
			w, err := core.NewWorld(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ciobench: %v\n", err)
				os.Exit(1)
			}
			const n = 50
			before := w.Costs()
			if _, err := w.RunEcho(n, size); err != nil {
				fmt.Fprintf(os.Stderr, "ciobench: %s/%d: %v\n", id, size, err)
				os.Exit(1)
			}
			model := w.Costs().Sub(before).ModelNanos(params) / n / 1000
			fmt.Printf(" %15.1f", model)
			w.Close()
		}
		fmt.Println()
	}
	fmt.Println("\nreading: host-socket is crossing-bound (flat, high floor); the safe ring and")
	fmt.Println("dual boundary are byte-bound (low floor, shallow slope); the tunnel adds a")
	fmt.Println("constant padding+crypto tax that fades as requests approach the pad size.")
}

func runStorage(verbose bool) {
	params := platform.DefaultCostParams()
	fmt.Println("== §3.3 storage designs: file workload (8 files x 16 records x 512B) ==")
	fmt.Printf("%-14s %-7s %-5s %10s %12s\n", "design", "coreTCB", "obs", "ops/s", "model/op")
	for _, id := range stio.Designs() {
		w, err := stio.NewWorld(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		res, err := w.RunFiles(8, 16, 512)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		model := w.Costs().ModelNanos(params) / float64(res.Ops) / 1000
		coreTCB, _ := stio.TCBOf(id)
		fmt.Printf("%-14s %-7s %-5s %10.0f %10.1fus\n",
			id, coreTCB.Class(), w.Observability().Class(), res.OpsPerSec(), model)
		if verbose {
			fmt.Printf("    costs: %s\n    obs: %s\n", w.Costs(), w.Observability())
		}
		w.Close()
	}
	fmt.Println("\nexpected shape: host-files = tiny TCB but names+contents visible and a TEE")
	fmt.Println("crossing per call; block-ring = pattern-only observability, stack-sized TCB;")
	fmt.Println("dual-storage = small core TCB, pattern-only observability, gate-crossing cost.")
}

func runDesign(id core.DesignID, echoN, echoSize int, bulkBytes int64, params platform.CostParams, verbose bool) error {
	w, err := core.NewWorld(id)
	if err != nil {
		return err
	}
	defer w.Close()

	before := w.Costs()
	echo, err := w.RunEcho(echoN, echoSize)
	if err != nil {
		return fmt.Errorf("echo: %w", err)
	}
	echoCosts := w.Costs().Sub(before)
	modelPerOp := echoCosts.ModelNanos(params) / float64(echoN) / 1000 // µs

	before = w.Costs()
	bulk, err := w.RunBulk(bulkBytes, 32<<10)
	if err != nil {
		return fmt.Errorf("bulk: %w", err)
	}
	bulkCosts := w.Costs().Sub(before)
	modelBulkMs := bulkCosts.ModelNanos(params) / 1e6

	coreTCB, _ := core.TCBOf(id)
	obs := w.Observability()

	fmt.Printf("%-20s %-7s %-5s %9.0f %9.0f %9.2f %9.1fus %10.1fms\n",
		id, coreTCB.Class(), obs.Class(),
		float64(echo.Percentile(50).Microseconds()),
		float64(echo.Percentile(99).Microseconds()),
		bulk.Gbps(), modelPerOp, modelBulkMs)

	if verbose {
		fmt.Printf("    echo costs: %s\n", echoCosts)
		fmt.Printf("    bulk costs: %s\n", bulkCosts)
		fmt.Printf("    observability: %s\n", obs)
		_, tee := core.TCBOf(id)
		fmt.Printf("    tcb: core=%d LoC, tee-total=%d LoC\n", coreTCB.Total(), tee.Total())
	}
	return nil
}
