// Command ciobench reproduces Figure 5 and the performance tables: it
// runs the echo and bulk workloads over every confidential I/O design
// and prints, per design, the measured throughput and latency, the
// modelled per-operation cost (boundary events weighted with the
// platform calibration), the TCB class, and the observability class —
// the three axes of the paper's design-space figure.
//
// Usage:
//
//	ciobench                 # Figure 5 table, default workload sizes
//	ciobench -echo 200 -size 256 -bulk 4
//	ciobench -design dual-boundary -v
//	ciobench -batch          # batched-datapath amortization table
//	ciobench -queues         # multi-queue scaling table (queues x batch)
//	ciobench -lat            # batch-1 notification modes with tail latency
//	ciobench -tenants        # multi-tenant gateway fairness under flood
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"confio/internal/core"
	"confio/internal/platform"
	"confio/internal/safering"
	"confio/internal/stio"
)

func main() {
	echoN := flag.Int("echo", 200, "echo round trips per design")
	echoSize := flag.Int("size", 256, "echo request size in bytes")
	bulkMB := flag.Int("bulk", 4, "bulk transfer size in MiB")
	only := flag.String("design", "", "run a single design (comma-separated ids)")
	verbose := flag.Bool("v", false, "print raw cost counters")
	storage := flag.Bool("storage", false, "run the §3.3 storage designs instead")
	sweep := flag.Bool("sweep", false, "sweep request sizes to locate design crossovers")
	batch := flag.Bool("batch", false, "sweep batch sizes over the safe ring's batched datapath")
	queues := flag.Bool("queues", false, "sweep queue counts over the multi-queue ring datapath")
	blk := flag.Bool("blk", false, "sweep batch x queues over the storage ring")
	lat := flag.Bool("lat", false, "batch-1 notification-mode table with round-trip tail latency")
	tenants := flag.Bool("tenants", false, "multi-tenant gateway fairness table (one tenant floods)")
	flag.Parse()

	if *storage {
		runStorage(*verbose)
		return
	}
	if *sweep {
		runSweep()
		return
	}
	if *batch {
		runBatch()
		return
	}
	if *queues {
		runMQ()
		return
	}
	if *blk {
		runBlk()
		return
	}
	if *lat {
		runLat()
		return
	}
	if *tenants {
		runTenants()
		return
	}

	designs := core.Designs()
	if *only != "" {
		designs = nil
		for _, s := range strings.Split(*only, ",") {
			designs = append(designs, core.DesignID(strings.TrimSpace(s)))
		}
	}

	params := platform.DefaultCostParams()
	fmt.Println("== Figure 5: confidentiality (TCB, observability) vs performance ==")
	fmt.Printf("workloads: echo %d x %dB round trips; bulk %d MiB stream\n", *echoN, *echoSize, *bulkMB)
	fmt.Printf("model calibration: TEE crossing %.0fns, gate %.0fns, copy %.2fns/B, crypto %.2fns/B\n\n",
		params.TEECrossNs, params.GateCrossNs, params.CopyByteNs, params.CryptoNs)

	fmt.Printf("%-20s %-7s %-5s %9s %9s %9s %11s %12s\n",
		"design", "coreTCB", "obs", "p50(us)", "p99(us)", "Gbit/s", "model/op", "model(bulk)")

	for _, id := range designs {
		if err := runDesign(id, *echoN, *echoSize, int64(*bulkMB)<<20, params, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}

	fmt.Println("\nexpected shape (paper): host-socket = smallest TCB, worst observability &")
	fmt.Println("latency; L2 designs = fast but stack-sized TCB; tunnel = lowest observability,")
	fmt.Println("largest TCB, crypto-bound; dual-boundary = small core TCB, network-equivalent")
	fmt.Println("observability, performance within a gate-crossing of the raw safe ring.")
}

// runSweep prints modelled cost per echo round trip as request size
// grows, for the four designs whose relative order the paper reasons
// about. Crossing-dominated designs flatten out; byte-cost-dominated
// designs grow linearly — the crossover structure of the design space.
func runSweep() {
	params := platform.DefaultCostParams()
	sizes := []int{64, 256, 1024, 4096, 15000}
	designs := []core.DesignID{core.HostSocket, core.L2SafeRing, core.Tunnel, core.DualBoundary}

	fmt.Println("== request-size sweep: model µs per echo round trip ==")
	fmt.Printf("%-10s", "size")
	for _, id := range designs {
		fmt.Printf(" %16s", id)
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%-10d", size)
		for _, id := range designs {
			w, err := core.NewWorld(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ciobench: %v\n", err)
				os.Exit(1)
			}
			const n = 50
			before := w.Costs()
			if _, err := w.RunEcho(n, size); err != nil {
				fmt.Fprintf(os.Stderr, "ciobench: %s/%d: %v\n", id, size, err)
				os.Exit(1)
			}
			model := w.Costs().Sub(before).ModelNanos(params) / n / 1000
			fmt.Printf(" %15.1f", model)
			w.Close()
		}
		fmt.Println()
	}
	fmt.Println("\nreading: host-socket is crossing-bound (flat, high floor); the safe ring and")
	fmt.Println("dual boundary are byte-bound (low floor, shallow slope); the tunnel adds a")
	fmt.Println("constant padding+crypto tax that fades as requests approach the pad size.")
}

// runBatch prints the amortization table for the batched ring datapath:
// for each data-positioning mode and batch size, the doorbell
// notifications and index publications per frame, plus modelled time per
// frame, over a doorbell-enabled bidirectional round trip. The batch-1
// rows coincide with the single-frame datapath; the paper's stateless
// interface needs no new message types or negotiation to earn the drop.
func runBatch() {
	fmt.Println("== batched datapath: publication amortization per frame ==")
	fmt.Printf("%-14s %-7s %13s %11s %15s\n", "mode", "batch", "notif/frame", "pub/frame", "model-ns/frame")
	for _, mode := range []safering.DataMode{safering.Inline, safering.SharedArea, safering.Indirect} {
		for _, batch := range []int{1, 4, 16, 64} {
			notif, pub, model, err := batchRun(mode, batch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ciobench: %v/batch%d: %v\n", mode, batch, err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %-7d %13.4f %11.4f %15.1f\n", mode, batch, notif, pub, model)
		}
	}
	fmt.Println("\nreading: one index store + one doorbell per batch per direction, so both")
	fmt.Println("columns fall as 1/batch; at batch 16 the ring issues 16x fewer notifications")
	fmt.Println("and publications per frame than the single-frame datapath.")
}

// batchRun moves a fixed frame count through one safe-ring instance with
// batched calls in both directions and returns per-frame meter readings.
func batchRun(mode safering.DataMode, batch int) (notif, pub, modelNs float64, err error) {
	cfg := safering.DefaultConfig()
	cfg.Mode = mode
	cfg.Notify = true
	if mode != safering.Inline {
		cfg.SlotSize = 64
	}
	var m platform.Meter
	ep, err := safering.New(cfg, &m)
	if err != nil {
		return 0, 0, 0, err
	}
	hp := safering.NewHostPort(ep.Shared())
	payload := make([]byte, 1400)
	frames := make([][]byte, batch)
	for i := range frames {
		frames[i] = payload
	}
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, cfg.FrameCap())
	}
	lens := make([]int, batch)
	out := make([]*safering.RxFrame, batch)

	const targetFrames = 4096
	rounds := targetFrames / batch
	before := m.Snapshot()
	for r := 0; r < rounds; r++ {
		if n, berr := ep.SendBatch(frames); berr != nil || n != batch {
			return 0, 0, 0, fmt.Errorf("SendBatch = %d, %v", n, berr)
		}
		if n, berr := hp.PopBatch(bufs, lens); berr != nil || n != batch {
			return 0, 0, 0, fmt.Errorf("PopBatch = %d, %v", n, berr)
		}
		if n, berr := hp.PushBatch(frames); berr != nil || n != batch {
			return 0, 0, 0, fmt.Errorf("PushBatch = %d, %v", n, berr)
		}
		n, berr := ep.RecvBatch(out)
		if berr != nil || n != batch {
			return 0, 0, 0, fmt.Errorf("RecvBatch = %d, %v", n, berr)
		}
		for j := 0; j < n; j++ {
			out[j].Release()
		}
	}
	d := m.Snapshot().Sub(before)
	moved := float64(2 * rounds * batch)
	return float64(d.Notifications) / moved, float64(d.IndexPublishes) / moved,
		d.ModelNanos(platform.DefaultCostParams()) / moved, nil
}

// runLat prints the batch-1 notification-mode table: for the always-ring
// doorbell baseline and the event-idx modes (re-armed every drain,
// suppressed under sustained load, suppressed with busy-poll receive),
// the doorbell crossings and suppressions per frame plus wall-clock
// round-trip p50/p99/p999 from the meter's latency histogram. This is
// the single-frame latency-sensitive regime where batching cannot help;
// suppression is what removes the per-frame doorbell there.
func runLat() {
	fmt.Println("== batch-1 notification modes: crossings and round-trip tail latency ==")
	fmt.Printf("%-22s %13s %17s %9s %9s %9s\n",
		"mode", "notif/frame", "suppressed/frame", "p50(us)", "p99(us)", "p999(us)")
	modes := []struct {
		name                  string
		eventIdx, supp, rearm bool
	}{
		{"doorbell", false, false, false},
		{"event-idx-armed", true, false, true},
		{"event-idx-suppressed", true, true, false},
		{"event-idx-busy-poll", true, true, false},
	}
	for _, md := range modes {
		notif, supp, lat, err := latRun(md.eventIdx, md.supp, md.rearm, md.name == "event-idx-busy-poll")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", md.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-22s %13.4f %17.4f %9.2f %9.2f %9.2f\n", md.name, notif, supp,
			float64(lat.P50)/1e3, float64(lat.P99)/1e3, float64(lat.P999)/1e3)
	}
	fmt.Println("\nreading: the doorbell baseline pays one notification per frame at batch 1;")
	fmt.Println("a single suppression call elides all of them under sustained load (the stale")
	fmt.Println("threshold never re-crosses), and the tail tightens with the doorbell gone.")
}

// latRun drives batch-1 bidirectional round trips through one safe-ring
// instance and returns per-frame notification readings plus the latency
// percentile summary.
func latRun(eventIdx, suppress, rearm, busyPoll bool) (notif, supp float64, lat platform.LatencySummary, err error) {
	cfg := safering.DefaultConfig()
	cfg.Notify = true
	cfg.EventIdx = eventIdx
	if busyPoll {
		cfg.BusyPoll = 64
	}
	var m platform.Meter
	ep, err := safering.New(cfg, &m)
	if err != nil {
		return 0, 0, lat, err
	}
	hp := safering.NewHostPort(ep.Shared())
	if suppress {
		hp.SuppressTXNotify()
		ep.SuppressRXNotify()
	}
	payload := make([]byte, 1400)
	buf := make([]byte, cfg.FrameCap())
	const rounds = 4096
	before := m.Snapshot()
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if serr := ep.Send(payload); serr != nil {
			return 0, 0, lat, serr
		}
		if _, perr := hp.Pop(buf); perr != nil {
			return 0, 0, lat, perr
		}
		if rearm {
			hp.ArmTXNotify()
		}
		if perr := hp.Push(payload); perr != nil {
			return 0, 0, lat, perr
		}
		var rx *safering.RxFrame
		var rerr error
		if busyPoll {
			rx, rerr = ep.RecvPoll()
		} else {
			rx, rerr = ep.Recv()
		}
		if rerr != nil {
			return 0, 0, lat, rerr
		}
		rx.Release()
		if rearm {
			ep.ArmRXNotify()
		}
		m.RecordLatency(time.Since(start))
	}
	d := m.Snapshot().Sub(before)
	moved := float64(2 * rounds)
	return float64(d.Notifications) / moved, float64(d.NotifsSuppressed) / moved,
		m.LatencyPercentiles(), nil
}

// runMQ prints the multi-queue scaling table: for each queue count and
// batch size, the per-frame index publications and modelled time, plus
// the device-level modelled throughput. The queues of a multi-queue
// device proceed concurrently (independent ring pairs, no shared lock),
// so the device's modelled time is the slowest queue's critical path —
// that is the column that scales with the queue count.
func runMQ() {
	fmt.Println("== multi-queue ring datapath: scaling table ==")
	fmt.Printf("%-14s %-7s %-7s %11s %15s %13s\n",
		"mode", "queues", "batch", "pub/frame", "model-ns/frame", "model-MB/s")
	for _, mode := range []safering.DataMode{safering.Inline, safering.SharedArea} {
		for _, queues := range []int{1, 2, 4, 8} {
			for _, batch := range []int{16, 64} {
				pub, model, mbps, err := mqRun(mode, queues, batch)
				if err != nil {
					fmt.Fprintf(os.Stderr, "ciobench: %v/q%d/batch%d: %v\n", mode, queues, batch, err)
					os.Exit(1)
				}
				fmt.Printf("%-14s %-7d %-7d %11.4f %15.1f %13.0f\n",
					mode, queues, batch, pub, model, mbps)
			}
		}
	}
	fmt.Println("\nreading: per-frame cost is flat in the queue count (each queue is an")
	fmt.Println("independent ring pair), so the device's modelled throughput — total bytes")
	fmt.Println("over the slowest queue's critical path — scales linearly with queues.")
}

// mqRun moves a fixed frame count through every queue of an N-queue
// device and returns per-frame meter readings plus the device-level
// modelled throughput (bytes over the slowest queue's modelled nanos).
func mqRun(mode safering.DataMode, queues, batch int) (pub, modelNs, modelMBps float64, err error) {
	cfg := safering.DefaultConfig()
	cfg.Mode = mode
	if mode != safering.Inline {
		cfg.SlotSize = 64
	}
	bank := platform.NewMeterBank(queues)
	m, err := safering.NewMulti(cfg, queues, bank)
	if err != nil {
		return 0, 0, 0, err
	}
	hp := safering.NewMultiHostPort(m.SharedQueues())
	payload := make([]byte, 1400)
	frames := make([][]byte, batch)
	for i := range frames {
		frames[i] = payload
	}
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, cfg.FrameCap())
	}
	lens := make([]int, batch)
	out := make([]*safering.RxFrame, batch)

	const targetFramesPerQueue = 4096
	rounds := targetFramesPerQueue / batch
	before := m.Costs()
	beforeQ := m.QueueCosts()
	for r := 0; r < rounds; r++ {
		for q := 0; q < queues; q++ {
			ep, h := m.Queue(q), hp.Queue(q)
			if n, berr := ep.SendBatch(frames); berr != nil || n != batch {
				return 0, 0, 0, fmt.Errorf("queue %d SendBatch = %d, %v", q, n, berr)
			}
			if n, berr := h.PopBatch(bufs, lens); berr != nil || n != batch {
				return 0, 0, 0, fmt.Errorf("queue %d PopBatch = %d, %v", q, n, berr)
			}
			if n, berr := h.PushBatch(frames); berr != nil || n != batch {
				return 0, 0, 0, fmt.Errorf("queue %d PushBatch = %d, %v", q, n, berr)
			}
			n, berr := ep.RecvBatch(out)
			if berr != nil || n != batch {
				return 0, 0, 0, fmt.Errorf("queue %d RecvBatch = %d, %v", q, n, berr)
			}
			for j := 0; j < n; j++ {
				out[j].Release()
			}
		}
	}
	params := platform.DefaultCostParams()
	d := m.Costs().Sub(before)
	moved := float64(2 * rounds * batch * queues)
	crit := 0.0
	for q, after := range m.QueueCosts() {
		if ns := after.Sub(beforeQ[q]).ModelNanos(params); ns > crit {
			crit = ns
		}
	}
	totalBytes := moved * float64(len(payload))
	if crit > 0 {
		modelMBps = totalBytes / (crit / 1e9) / 1e6
	}
	return float64(d.IndexPublishes) / moved, d.ModelNanos(params) / moved, modelMBps, nil
}

func runStorage(verbose bool) {
	params := platform.DefaultCostParams()
	fmt.Println("== §3.3 storage designs: file workload (8 files x 16 records x 512B) ==")
	fmt.Printf("%-14s %-7s %-5s %10s %12s\n", "design", "coreTCB", "obs", "ops/s", "model/op")
	for _, id := range stio.Designs() {
		w, err := stio.NewWorld(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		res, err := w.RunFiles(8, 16, 512)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ciobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		model := w.Costs().ModelNanos(params) / float64(res.Ops) / 1000
		coreTCB, _ := stio.TCBOf(id)
		fmt.Printf("%-14s %-7s %-5s %10.0f %10.1fus\n",
			id, coreTCB.Class(), w.Observability().Class(), res.OpsPerSec(), model)
		if verbose {
			fmt.Printf("    costs: %s\n    obs: %s\n", w.Costs(), w.Observability())
		}
		w.Close()
	}
	fmt.Println("\nexpected shape: host-files = tiny TCB but names+contents visible and a TEE")
	fmt.Println("crossing per call; block-ring = pattern-only observability, stack-sized TCB;")
	fmt.Println("dual-storage = small core TCB, pattern-only observability, gate-crossing cost.")
}

func runDesign(id core.DesignID, echoN, echoSize int, bulkBytes int64, params platform.CostParams, verbose bool) error {
	w, err := core.NewWorld(id)
	if err != nil {
		return err
	}
	defer w.Close()

	before := w.Costs()
	echo, err := w.RunEcho(echoN, echoSize)
	if err != nil {
		return fmt.Errorf("echo: %w", err)
	}
	echoCosts := w.Costs().Sub(before)
	modelPerOp := echoCosts.ModelNanos(params) / float64(echoN) / 1000 // µs

	before = w.Costs()
	bulk, err := w.RunBulk(bulkBytes, 32<<10)
	if err != nil {
		return fmt.Errorf("bulk: %w", err)
	}
	bulkCosts := w.Costs().Sub(before)
	modelBulkMs := bulkCosts.ModelNanos(params) / 1e6

	coreTCB, _ := core.TCBOf(id)
	obs := w.Observability()

	fmt.Printf("%-20s %-7s %-5s %9.0f %9.0f %9.2f %9.1fus %10.1fms\n",
		id, coreTCB.Class(), obs.Class(),
		float64(echo.Percentile(50).Microseconds()),
		float64(echo.Percentile(99).Microseconds()),
		bulk.Gbps(), modelPerOp, modelBulkMs)

	if verbose {
		fmt.Printf("    echo costs: %s\n", echoCosts)
		fmt.Printf("    bulk costs: %s\n", bulkCosts)
		fmt.Printf("    observability: %s\n", obs)
		_, tee := core.TCBOf(id)
		fmt.Printf("    tcb: core=%d LoC, tee-total=%d LoC\n", coreTCB.Total(), tee.Total())
	}
	return nil
}
