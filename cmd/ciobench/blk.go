package main

import (
	"fmt"
	"os"

	"confio/internal/blkring"
	"confio/internal/blockdev"
	"confio/internal/platform"
)

// runBlk prints the storage-ring amortization table: for each queue
// count and batch size, the per-sector index publications, validation
// checks, and modelled time over the blkring datapath with live
// in-process backends. Mirrors `make bench-blk` (BENCH_blk.json); the
// batch-16 column is the number EXPERIMENTS.md quotes.
func runBlk() {
	fmt.Println("== storage ring (blkring): batch x queue amortization ==")
	fmt.Printf("%-7s %-7s %11s %14s %16s\n", "queues", "batch", "pub/sector", "checks/sector", "model-ns/sector")
	for _, queues := range []int{1, 4} {
		for _, batch := range []int{1, 4, 16} {
			pub, checks, model, err := blkRun(queues, batch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ciobench: blk q%d/batch%d: %v\n", queues, batch, err)
				os.Exit(1)
			}
			fmt.Printf("%-7d %-7d %11.4f %14.4f %16.1f\n", queues, batch, pub, checks, model)
		}
	}
	fmt.Println("\nreading: one producer-index store covers a whole batched span, so")
	fmt.Println("publications fall as 1/batch; checks fall toward one per completion load")
	fmt.Println("because the guest validates each status word once, not once per spin.")
}

// blkRun moves a fixed sector count through a blkring device in spans of
// `batch` sectors (write then read back) and returns per-sector meter
// readings.
func blkRun(queues, batch int) (pub, checks, modelNs float64, err error) {
	const slots = 16
	const sectors = 4096
	var m platform.Meter
	disk := blockdev.NewMemDisk(sectors)
	var dev interface {
		WriteSectors(lba uint64, p []byte) error
		ReadSectors(lba uint64, p []byte) error
	}
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	if queues == 1 {
		ep, nerr := blkring.New(slots, sectors, &m)
		if nerr != nil {
			return 0, 0, 0, nerr
		}
		be := blkring.NewBackend(ep.Shared(), disk)
		be.Start()
		stops = append(stops, be.Stop)
		dev = ep
	} else {
		mq, nerr := blkring.NewMulti(queues, slots, sectors, &m)
		if nerr != nil {
			return 0, 0, 0, nerr
		}
		for _, sh := range mq.Shareds() {
			be := blkring.NewBackend(sh, disk)
			be.Start()
			stops = append(stops, be.Stop)
		}
		dev = mq
	}

	span := batch * blockdev.SectorSize
	wr := make([]byte, span)
	for i := range wr {
		wr[i] = byte(i * 13)
	}
	rd := make([]byte, span)
	const targetSectors = 2048
	rounds := targetSectors / batch
	spans := sectors/batch - 1
	before := m.Snapshot()
	for r := 0; r < rounds; r++ {
		lba := uint64(r%spans) * uint64(batch)
		if werr := dev.WriteSectors(lba, wr); werr != nil {
			return 0, 0, 0, werr
		}
		if rerr := dev.ReadSectors(lba, rd); rerr != nil {
			return 0, 0, 0, rerr
		}
	}
	d := m.Snapshot().Sub(before)
	moved := float64(2 * rounds * batch)
	return float64(d.IndexPublishes) / moved, float64(d.Checks) / moved,
		d.ModelNanos(platform.DefaultCostParams()) / moved, nil
}
