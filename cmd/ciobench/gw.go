package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"

	"confio/internal/gateway"
)

// runTenants prints the multi-tenant gateway fairness table: three
// tenants behind one ctls-terminating gateway on a shared multi-queue
// safe ring, tenant 1 flooding 4 KiB echoes as fast as it can while
// tenants 2 and 3 run a fixed latency-sensitive workload. The per-tenant
// meters answer the fairness question directly: the measured tenants
// must finish uncharged (no drops, no evictions) with comparable tails,
// because every tenant has its own compartment, its own key, and its own
// budget — the flooder competes for ring bandwidth, nothing else.
func runTenants() {
	fmt.Println("== multi-tenant gateway: per-tenant fairness under flood ==")
	n, err := gateway.NewNode(gateway.DefaultNodeConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciobench: gateway: %v\n", err)
		os.Exit(1)
	}
	defer n.Close()

	echo := func(c io.ReadWriteCloser, payload, resp []byte) error {
		if _, err := c.Write(payload); err != nil {
			return err
		}
		_, err := io.ReadFull(c, resp)
		return err
	}

	// Tenant 1: the flooder. Streams until the measured tenants finish.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	cf, err := n.DialTenant(1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ciobench: flooder dial: %v\n", err)
		os.Exit(1)
	}
	defer cf.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := bytes.Repeat([]byte{0xF1}, 4096)
		resp := make([]byte, len(payload))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := echo(cf, payload, resp); err != nil {
				return
			}
		}
	}()

	// Tenants 2 and 3: the measured workload, concurrent with the flood.
	const rounds = 300
	var mwg sync.WaitGroup
	errs := make(chan error, 2)
	for _, id := range []gateway.TenantID{2, 3} {
		id := id
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			c, err := n.DialTenant(id)
			if err != nil {
				errs <- fmt.Errorf("tenant %v dial: %w", id, err)
				return
			}
			defer c.Close()
			payload := bytes.Repeat([]byte{byte(id)}, 256)
			resp := make([]byte, len(payload))
			for i := 0; i < rounds; i++ {
				if err := echo(c, payload, resp); err != nil {
					errs <- fmt.Errorf("tenant %v echo %d: %w", id, i, err)
					return
				}
			}
		}()
	}
	mwg.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintf(os.Stderr, "ciobench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-10s %9s %7s %7s %9s %9s %9s\n",
		"tenant", "role", "frames", "drops", "evict", "p50(us)", "p99(us)", "p999(us)")
	role := map[uint64]string{1: "flooder", 2: "measured", 3: "measured"}
	for _, id := range n.Tb.IDs() {
		c := n.Tb.Tenant(id)
		lat := n.Tb.TenantLatency(id)
		fmt.Printf("%-8d %-10s %9d %7d %7d %9.2f %9.2f %9.2f\n",
			id, role[id], c.Frames, c.Drops, c.Evictions,
			float64(lat.P50)/1e3, float64(lat.P99)/1e3, float64(lat.P999)/1e3)
	}
	fmt.Println("\nreading: the measured tenants end uncharged — zero drops, zero evictions —")
	fmt.Println("with comparable tails, while the flooder's frame count shows how hard the")
	fmt.Println("neighbor pushed. Per-tenant compartments and budgets make flooding a")
	fmt.Println("bandwidth competition, never a safety or liveness problem for neighbors.")
}
