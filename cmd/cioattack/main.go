// Command cioattack runs the interface-vulnerability suite against every
// transport and prints the resilience matrix (the §3.2 safety claims,
// verified by execution).
//
// Usage:
//
//	cioattack           # matrix
//	cioattack -v        # every result with detail
package main

import (
	"flag"
	"fmt"
	"os"

	"confio/internal/attack"
)

func main() {
	verbose := flag.Bool("v", false, "print each result with detail")
	flag.Parse()

	results := attack.RunAll()
	if *verbose {
		for _, r := range results {
			fmt.Println(r)
		}
		fmt.Println()
	}
	fmt.Print(attack.Matrix(results))

	fmt.Println("\nper-transport summary:")
	sum := attack.Summary(results)
	for _, tr := range attack.TransportNames {
		s := sum[tr]
		fmt.Printf("  %-18s blocked=%d degraded=%d compromised=%d n/a=%d\n",
			tr, s[attack.Blocked], s[attack.Degraded], s[attack.Compromised], s[attack.NotApplicable])
	}

	// Exit nonzero if the safe ring was ever compromised — CI guard for
	// the paper's core claim.
	for _, r := range results {
		if (r.Transport == "safering" || r.Transport == "safering-revoke") && r.Verdict == attack.Compromised {
			fmt.Fprintf(os.Stderr, "cioattack: SAFE RING COMPROMISED: %s\n", r)
			os.Exit(1)
		}
	}
}
