// Command cioattack runs the interface-vulnerability suite against every
// transport and prints the resilience matrix (the §3.2 safety claims,
// verified by execution), followed by the recovery-liveness report: the
// chaos-host scenarios showing every induced fault ends in a clean new
// epoch or a permanent fail-dead — never a live-but-corrupt device.
//
// Usage:
//
//	cioattack           # matrix + recovery report
//	cioattack -v        # every result with detail
package main

import (
	"flag"
	"fmt"
	"os"

	"confio/internal/attack"
	"confio/internal/chaos"
)

func main() {
	verbose := flag.Bool("v", false, "print each result with detail")
	flag.Parse()

	results := attack.RunAll()
	if *verbose {
		for _, r := range results {
			fmt.Println(r)
		}
		fmt.Println()
	}
	fmt.Print(attack.Matrix(results))

	fmt.Println("\nper-transport summary:")
	sum := attack.Summary(results)
	for _, tr := range attack.TransportNames {
		s := sum[tr]
		fmt.Printf("  %-18s blocked=%d degraded=%d compromised=%d n/a=%d\n",
			tr, s[attack.Blocked], s[attack.Degraded], s[attack.Compromised], s[attack.NotApplicable])
	}

	// Recovery liveness: the chaos-host scenarios. Each run reports its
	// outcome plus the meter counters (deaths, reincarnations, stalls).
	fmt.Println("\nrecovery liveness (chaos-host scenarios):")
	var deaths, reincs, stalls uint64
	corrupt := false
	for _, sc := range chaos.Scenarios() {
		r := sc.Run()
		fmt.Printf("  %s\n", r)
		deaths += r.Deaths
		reincs += r.Reincarnations
		stalls += r.Stalls
		if r.Outcome == chaos.Corrupt {
			corrupt = true
		}
	}
	fmt.Printf("  totals: deaths=%d reincarnations=%d stalls-detected=%d\n", deaths, reincs, stalls)

	// Exit nonzero if the safe ring was ever compromised — CI guard for
	// the paper's core claim.
	for _, r := range results {
		if (r.Transport == "safering" || r.Transport == "safering-revoke" || r.Transport == "blkring") && r.Verdict == attack.Compromised {
			fmt.Fprintf(os.Stderr, "cioattack: SAFE RING COMPROMISED: %s\n", r)
			os.Exit(1)
		}
	}
	// Same guard for the recovery invariant: a live-but-corrupt device
	// after a fault means fail-dead recovery is broken.
	if corrupt {
		fmt.Fprintln(os.Stderr, "cioattack: RECOVERY INVARIANT VIOLATED: live-but-corrupt outcome")
		os.Exit(1)
	}
}
