package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"confio/internal/analysis"
)

// TestBaselineResolvedFromModuleRoot is the regression test for the
// -baseline path bug: a relative baseline path used to be resolved against
// the invoker's working directory, so `ciovet -baseline ciovet_baseline.json`
// failed (or silently checked the wrong file) whenever ciovet was run from a
// package subdirectory. The path must resolve against the module root.
func TestBaselineResolvedFromModuleRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs ciovet over the full module")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "ciovet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ciovet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ciovet: %v\n%s", err, out)
	}

	// Run from a package subdirectory with a relative -baseline path. The
	// pattern is the module-path form so the analyzed package set (and hence
	// the suppression multiset) is identical to a root invocation.
	run := exec.Command(bin, "-baseline", "ciovet_baseline.json", "confio/...")
	run.Dir = filepath.Join(root, "internal", "safering")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("ciovet from subdirectory: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ciovet: clean") {
		t.Fatalf("expected clean run against the root baseline, got:\n%s", out)
	}
}

// TestModuleRootFromSubdir checks the helper directly: any directory inside
// the module reports the same root.
func TestModuleRootFromSubdir(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot(.): %v", err)
	}
	sub, err := analysis.ModuleRoot(filepath.Join(root, "internal", "analysis"))
	if err != nil {
		t.Fatalf("ModuleRoot(subdir): %v", err)
	}
	if sub != root {
		t.Fatalf("module root drifted with cwd: %q vs %q", sub, root)
	}
}
