// Command ciovet runs confio's trust-boundary static-analysis suite over
// the module, multichecker-style. It exits non-zero when any unsuppressed
// diagnostic remains, which makes it a CI gate:
//
//	go run ./cmd/ciovet ./...
//
// Deliberate violations (attack harness, legacy unsafe baselines) opt out
// loudly with `//ciovet:allow <rule> <reason>` on or above the flagged line;
// -v lists every suppression so opt-outs stay auditable.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"confio/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also list suppressed diagnostics (//ciovet:allow opt-outs)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ciovet [-v] [-list] [packages]\n\n"+
			"Mechanically enforces the paper's trust-boundary hardening rules.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciovet:", err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	var suppressed []analysis.Suppression
	var fsetOf = map[string]*analysis.Package{}
	for _, pkg := range pkgs {
		res, err := analysis.Run(pkg, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ciovet:", err)
			os.Exit(2)
		}
		for range res.Diagnostics {
			fsetOf[pkg.Path] = pkg
		}
		for i := range res.Diagnostics {
			d := res.Diagnostics[i]
			diags = append(diags, d)
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Rule, d.Message)
		}
		suppressed = append(suppressed, res.Suppressed...)
		if *verbose {
			for _, s := range res.Suppressed {
				fmt.Printf("%s: [%s] suppressed: %s (reason: %s)\n",
					pkg.Fset.Position(s.Pos), s.Rule, s.Message, s.Reason)
			}
		}
	}

	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	if len(diags) > 0 {
		var rules []string
		for r := range byRule {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		fmt.Fprintf(os.Stderr, "ciovet: %d diagnostic(s)", len(diags))
		for _, r := range rules {
			fmt.Fprintf(os.Stderr, " %s=%d", r, byRule[r])
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
	if *verbose || len(suppressed) > 0 {
		fmt.Printf("ciovet: clean (%d analyzer(s), %d package(s), %d suppression(s))\n",
			len(suite), len(pkgs), len(suppressed))
	}
}
