// Command ciovet runs confio's trust-boundary static-analysis suite over
// the module, multichecker-style. It exits non-zero when any unsuppressed
// diagnostic remains, which makes it a CI gate:
//
//	go run ./cmd/ciovet -json -baseline ciovet_baseline.json ./...
//
// Deliberate violations (attack harness, legacy unsafe baselines) opt out
// loudly with `//ciovet:allow <rule> <reason>` on or above the flagged line;
// -v lists every suppression so opt-outs stay auditable. With -baseline,
// the current suppression multiset must match the checked-in file exactly —
// both new opt-outs and stale records fail the gate — and -update rewrites
// the file after an audit.
//
// Packages are analyzed in dependency order with cross-package facts
// (taint, ownership, lock discipline) flowing from each package to its
// dependents, and independent subtrees run in parallel (-par, default
// GOMAXPROCS). Output is sorted by source position, so runs are
// byte-for-byte reproducible regardless of the schedule; -json emits
// one finding per line for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"text/tabwriter"

	"confio/internal/analysis"
)

// finding is one diagnostic resolved to a concrete position, the unit of
// sorted text and JSON output.
type finding struct {
	Pos     string `json:"-"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Suppressed findings appear only under -v / in suppression listings.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func toFinding(fset *token.FileSet, d analysis.Diagnostic) finding {
	p := fset.Position(d.Pos)
	return finding{
		Pos: p.String(), File: p.Filename, Line: p.Line, Col: p.Column,
		Rule: d.Rule, Message: d.Message,
	}
}

func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// ruleCount tallies one (package, rule) cell of the -stats table.
type ruleCount struct{ findings, suppressed int }

// printStats writes the -stats table: one row per (package, rule) pair
// that produced a finding or a suppression, sorted by package then rule,
// plus a totals row — deterministic, so EXPERIMENTS.md can snapshot it.
func printStats(counts map[string]map[string]*ruleCount) {
	var pkgPaths []string
	for p := range counts {
		pkgPaths = append(pkgPaths, p)
	}
	sort.Strings(pkgPaths)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "PACKAGE\tRULE\tFINDINGS\tSUPPRESSED")
	totalF, totalS := 0, 0
	for _, p := range pkgPaths {
		var rules []string
		for r := range counts[p] {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		for _, r := range rules {
			c := counts[p][r]
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\n", p, r, c.findings, c.suppressed)
			totalF += c.findings
			totalS += c.suppressed
		}
	}
	fmt.Fprintf(w, "TOTAL\t\t%d\t%d\n", totalF, totalS)
	w.Flush()
}

func main() {
	verbose := flag.Bool("v", false, "also list suppressed diagnostics (//ciovet:allow opt-outs)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	baselinePath := flag.String("baseline", "", "baseline file of audited suppressions; a relative path is resolved from the module root, and the current multiset must match the file exactly")
	update := flag.Bool("update", false, "rewrite the -baseline file from the current suppressions instead of checking")
	stats := flag.Bool("stats", false, "print a per-analyzer, per-package table of finding and suppression counts")
	par := flag.Int("par", runtime.GOMAXPROCS(0), "number of packages analyzed concurrently (dependency order is always respected)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ciovet [-v] [-list] [-json] [-stats] [-baseline file [-update]] [packages]\n\n"+
			"Mechanically enforces the paper's trust-boundary hardening rules.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadModule(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciovet:", err)
		os.Exit(2)
	}

	// Baseline paths and baseline entry file names are module-root
	// relative, never CWD relative: `ciovet -baseline ciovet_baseline.json`
	// must mean the same file whether invoked from the root, a package
	// directory, or a CI checkout step.
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciovet:", err)
		os.Exit(2)
	}
	if *baselinePath != "" && !filepath.IsAbs(*baselinePath) {
		*baselinePath = filepath.Join(root, *baselinePath)
	}

	counts := make(map[string]map[string]*ruleCount) // package -> rule -> counts
	bump := func(pkgPath, rule string, isSuppressed bool) {
		byRule := counts[pkgPath]
		if byRule == nil {
			byRule = make(map[string]*ruleCount)
			counts[pkgPath] = byRule
		}
		c := byRule[rule]
		if c == nil {
			c = &ruleCount{}
			byRule[rule] = c
		}
		if isSuppressed {
			c.suppressed++
		} else {
			c.findings++
		}
	}

	var diags []finding
	var suppressed []finding
	var entries []analysis.BaselineEntry
	results, _, err := analysis.RunModule(pkgs, suite, *par)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciovet:", err)
		os.Exit(2)
	}
	for _, pr := range results {
		pkg, res := pr.Pkg, pr.Res
		for _, d := range res.Diagnostics {
			diags = append(diags, toFinding(pkg.Fset, d))
			bump(pkg.Path, d.Rule, false)
		}
		for _, s := range res.Suppressed {
			f := toFinding(pkg.Fset, s.Diagnostic)
			f.Suppressed = true
			f.Reason = s.Reason
			suppressed = append(suppressed, f)
			entries = append(entries, analysis.SuppressionEntry(pkg.Fset, root, s))
			bump(pkg.Path, s.Diagnostic.Rule, true)
		}
	}
	sortFindings(diags)
	sortFindings(suppressed)

	emit := func(f finding) {
		if *jsonOut {
			b, err := json.Marshal(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ciovet:", err)
				os.Exit(2)
			}
			fmt.Println(string(b))
			return
		}
		if f.Suppressed {
			fmt.Printf("%s: [%s] suppressed: %s (reason: %s)\n", f.Pos, f.Rule, f.Message, f.Reason)
			return
		}
		fmt.Printf("%s: [%s] %s\n", f.Pos, f.Rule, f.Message)
	}
	for _, f := range diags {
		emit(f)
	}
	if *verbose {
		for _, f := range suppressed {
			emit(f)
		}
	}

	if *stats {
		printStats(counts)
	}

	exit := 0
	if *baselinePath != "" {
		if *update {
			if err := analysis.WriteBaseline(*baselinePath, entries); err != nil {
				fmt.Fprintln(os.Stderr, "ciovet:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "ciovet: wrote %d audited suppression(s) to %s\n", len(entries), *baselinePath)
		} else {
			recorded, err := analysis.LoadBaseline(*baselinePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ciovet:", err)
				os.Exit(2)
			}
			missing, stale := analysis.DiffBaseline(entries, recorded)
			for _, e := range missing {
				fmt.Fprintf(os.Stderr, "ciovet: unaudited suppression not in baseline: %s [%s] %s (reason: %s)\n",
					e.File, e.Rule, e.Message, e.Reason)
			}
			for _, e := range stale {
				fmt.Fprintf(os.Stderr, "ciovet: stale baseline entry (suppression no longer present): %s [%s] %s\n",
					e.File, e.Rule, e.Message)
			}
			if len(missing)+len(stale) > 0 {
				fmt.Fprintf(os.Stderr, "ciovet: baseline drift; audit and run `make vet-update-baseline`\n")
				exit = 1
			}
		}
	}

	if len(diags) > 0 {
		byRule := map[string]int{}
		for _, d := range diags {
			byRule[d.Rule]++
		}
		var rules []string
		for r := range byRule {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		fmt.Fprintf(os.Stderr, "ciovet: %d diagnostic(s)", len(diags))
		for _, r := range rules {
			fmt.Fprintf(os.Stderr, " %s=%d", r, byRule[r])
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
	if exit != 0 {
		os.Exit(exit)
	}
	if !*jsonOut {
		fmt.Printf("ciovet: clean (%d analyzer(s), %d package(s), %d suppression(s))\n",
			len(suite), len(pkgs), len(suppressed))
	}
}
