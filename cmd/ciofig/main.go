// Command ciofig regenerates the paper's empirical figures (2, 3, 4)
// from the embedded datasets and the classification pipeline, as ASCII
// charts or CSV.
//
// Usage:
//
//	ciofig              # all figures, ASCII
//	ciofig -fig 3       # one figure
//	ciofig -csv         # CSV output
//	ciofig -hardening   # §2.5 headline statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"confio/internal/fighist"
)

func main() {
	fig := flag.Int("fig", 0, "figure to render (2, 3 or 4; 0 = all)")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII charts")
	hardening := flag.Bool("hardening", false, "print the §2.5 hardening-study statistics")
	flag.Parse()

	if *hardening {
		printHardeningStats()
		return
	}

	show := func(n int) bool { return *fig == 0 || *fig == n }

	if show(2) {
		if *csv {
			fmt.Print(fighist.CVECSV(fighist.NetCVEs))
		} else {
			fmt.Println("== Figure 2 ==")
			fmt.Print(fighist.RenderCVESeries(fighist.NetCVEs))
			st := fighist.Trend(fighist.NetCVEs)
			fmt.Printf("  total=%d years=%d years-with-CVEs=%d first-half-mean=%.1f second-half-mean=%.1f\n\n",
				st.Total, st.YearsCovered, st.YearsWithCVEs, st.FirstHalfMean, st.SecondHalfMean)
		}
	}
	if show(3) {
		d := fighist.Aggregate(fighist.NetvscCommits, "netvsc", true)
		if *csv {
			fmt.Print(fighist.CSV(d))
		} else {
			fmt.Println("== Figure 3 ==")
			fmt.Print(fighist.RenderBars("Hardening commits to netvsc", d))
			fmt.Println()
		}
	}
	if show(4) {
		d := fighist.Aggregate(fighist.VirtioCommits, "virtio", true)
		if *csv {
			fmt.Print(fighist.CSV(d))
		} else {
			fmt.Println("== Figure 4 ==")
			fmt.Print(fighist.RenderBars("Hardening commits to the virtio family", d))
			fmt.Println()
		}
	}
	if *fig != 0 && !show(2) && !show(3) && !show(4) {
		fmt.Fprintf(os.Stderr, "ciofig: unknown figure %d\n", *fig)
		os.Exit(2)
	}
}

func printHardeningStats() {
	v := fighist.Aggregate(fighist.VirtioCommits, "virtio", true)
	n := fighist.Aggregate(fighist.NetvscCommits, "netvsc", true)
	fmt.Println("== §2.5 hardening-study headlines ==")
	fmt.Printf("virtio: %d hardening commits; %d (%.0f%%) amend or revert earlier hardening\n",
		v.Total(), v[fighist.Amend], v.Percent(fighist.Amend))
	fmt.Printf("netvsc: %d hardening commits; largest category %q (%.0f%%)\n",
		n.Total(), fighist.AddChecks, n.Percent(fighist.AddChecks))
	fmt.Println("observation: retrofitting distrust is error-prone and dominated by ad-hoc checks;")
	fmt.Println("compare `go test -bench BenchmarkHardeningCost` for what the retrofits cost.")
}
